"""Tests for forward-decay and the standalone decaying rate."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches.ewma import DecayingRate, ForwardDecay


class TestForwardDecay:
    def test_weight_at_landmark_is_one(self):
        fd = ForwardDecay(tau=10.0)
        assert fd.weight(0.0) == pytest.approx(1.0)

    def test_weight_grows_with_time(self):
        fd = ForwardDecay(tau=10.0)
        assert fd.weight(10.0) > fd.weight(5.0) > fd.weight(0.0)

    def test_rate_of_single_event(self):
        fd = ForwardDecay(tau=10.0)
        w = fd.weight(100.0)
        # Rate right at the observation time: 1/tau.
        assert fd.rate(w, 100.0) == pytest.approx(1.0 / 10.0)
        # Rate one tau later decays by 1/e.
        assert fd.rate(w, 110.0) == pytest.approx(1.0 / 10.0 / math.e)

    def test_renormalize_preserves_rates(self):
        fd = ForwardDecay(tau=5.0)
        w = fd.weight(50.0)
        rate_before = fd.rate(w, 60.0)
        factor = fd.renormalize(60.0)
        w *= factor
        assert fd.rate(w, 60.0) == pytest.approx(rate_before)

    def test_needs_renormalize_threshold(self):
        fd = ForwardDecay(tau=1.0, max_exponent=10.0)
        assert not fd.needs_renormalize(9.0)
        assert fd.needs_renormalize(11.0)

    def test_rejects_bad_tau(self):
        with pytest.raises(ValueError):
            ForwardDecay(tau=0.0)

    @settings(max_examples=50, deadline=None)
    @given(
        st.floats(min_value=0.0, max_value=100.0),
        st.floats(min_value=0.0, max_value=100.0),
    )
    def test_ordering_invariant(self, t1, t2):
        """Later observations always weigh at least as much."""
        fd = ForwardDecay(tau=7.0)
        if t1 <= t2:
            assert fd.weight(t1) <= fd.weight(t2)
        else:
            assert fd.weight(t1) >= fd.weight(t2)


class TestDecayingRate:
    def test_initial_rate_zero(self):
        assert DecayingRate().rate(0.0) == 0.0

    def test_steady_stream_converges(self):
        dr = DecayingRate(tau=10.0)
        t = 0.0
        for i in range(1000):
            t = i * 0.5  # 2 events per second
            dr.observe(t)
        assert dr.rate(t) == pytest.approx(2.0, rel=0.2)

    def test_decays_when_idle(self):
        dr = DecayingRate(tau=10.0)
        dr.observe(0.0)
        assert dr.rate(100.0) < dr.rate(1.0)

    def test_out_of_order_observation_tolerated(self):
        dr = DecayingRate(tau=10.0)
        dr.observe(10.0)
        dr.observe(5.0)  # late arrival: no crash, value grows
        assert dr.rate(10.0) > 0.0

    def test_rejects_bad_tau(self):
        with pytest.raises(ValueError):
            DecayingRate(tau=-1.0)
