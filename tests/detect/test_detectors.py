"""Unit tests for the streaming detection subsystem."""

import math
import pickle

import pytest

from repro.detect import (DETECTOR_DATASET, DetectorSet,
                          DetectorWindowState, DdosDetector,
                          ExfilDetector, NohDetector, build_detectors,
                          qname_info_millibits)
from tests.util import make_txn


def window(detector, qnames, start=0.0):
    """Feed one window of transactions and return {key: row}."""
    for qname in qnames:
        detector.observe(make_txn(qname=qname))
    return dict(detector.cut(start, start + 60.0))


class TestQnameInfo:
    def test_empty_subdomain_is_zero(self):
        assert qname_info_millibits("") == 0

    def test_repetition_carries_no_information(self):
        assert qname_info_millibits("aaaaaaaa") == 0

    def test_matches_entropy_times_length(self):
        # 4 distinct chars, uniform: 2 bits/char * 4 chars = 8 bits
        assert qname_info_millibits("abcd") == 8000

    def test_integer_quantization(self):
        value = qname_info_millibits("abcdefgh1234")
        assert isinstance(value, int)
        n = 12
        entropy = -sum((1 / n) * math.log2(1 / n) for _ in range(n))
        assert value == int(round(entropy * n * 1000))


class TestBuildDetectors:
    def test_falsy_spec_is_none(self):
        assert build_detectors(None) is None
        assert build_detectors(False) is None
        assert build_detectors([]) is None

    def test_true_builds_all_in_canonical_order(self):
        detectors = build_detectors(True)
        assert detectors.names == ["exfil", "ddos", "noh"]

    def test_names_and_instances_mix(self):
        custom = DdosDetector(min_distinct=5.0)
        detectors = build_detectors(["exfil", custom])
        assert detectors.names == ["exfil", "ddos"]
        assert detectors.detectors[1] is custom

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown detector"):
            build_detectors(["nosuch"])

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            DetectorSet([ExfilDetector(), ExfilDetector()])


class TestFlagLogic:
    def test_warmup_windows_never_flag(self):
        det = ExfilDetector(min_bits=1.0, warmup=2)
        loud = ["%08x.evil.com" % (i * 2654435761 % 2**32)
                for i in range(50)]
        rows = window(det, loud, start=0.0)
        assert rows["exfil"]["flagged"] == 0
        rows = window(det, loud, start=60.0)
        assert rows["exfil"]["flagged"] == 0

    def test_flags_after_warmup_on_jump(self):
        det = ExfilDetector(min_bits=10.0, warmup=1, ratio=4.0)
        window(det, ["www.quiet.com"], start=0.0)
        rows = window(det, ["%08x.quiet.com" % (i * 48271 % 2**32)
                            for i in range(40)], start=60.0)
        assert rows["exfil.quiet.com"]["flagged"] == 1
        assert rows["exfil"]["flagged"] == 1

    def test_steady_traffic_never_flags(self):
        det = ExfilDetector(min_bits=1.0, warmup=1, ratio=4.0)
        steady = ["mail.steady.com", "www.steady.com", "api.steady.com"]
        for i in range(6):
            rows = window(det, steady, start=60.0 * i)
            if i >= 1:
                # value == baseline, far below ratio * baseline
                assert rows["exfil.steady.com"]["flagged"] == 0

    def test_attack_does_not_launder_its_baseline(self):
        """A sustained attack keeps flagging: flagged windows must not
        feed the EWMA baseline."""
        det = ExfilDetector(min_bits=10.0, warmup=1, ratio=4.0)
        window(det, ["www.victim.com"], start=0.0)
        attack = ["%010x.victim.com" % (i * 69621 % 2**40)
                  for i in range(60)]
        for i in range(1, 5):
            rows = window(det, attack, start=60.0 * i)
            assert rows["exfil.victim.com"]["flagged"] == 1

    def test_absolute_floor_suppresses_small_keys(self):
        det = ExfilDetector(min_bits=1e6, warmup=0)
        rows = window(det, ["%08x.small.com" % i for i in range(20)])
        assert rows["exfil.small.com"]["flagged"] == 0

    def test_topn_caps_per_key_rows(self):
        det = ExfilDetector(topn=3)
        rows = window(det, ["www.domain%02d.com" % i for i in range(10)])
        per_key = [k for k in rows if k.startswith("exfil.")]
        assert len(per_key) == 3
        assert rows["exfil"]["keys"] == 10


class TestDdosDetector:
    def test_counts_distinct_not_volume(self):
        det = DdosDetector(min_distinct=10.0, warmup=0)
        qnames = ["sub%04d.victim.net" % i for i in range(300)]
        rows = window(det, qnames + ["www.loud.net"] * 500)
        distinct = rows["ddos.victim.net"]["distinct"]
        assert distinct == pytest.approx(300, rel=0.05)
        assert rows["ddos.loud.net"]["distinct"] == 1
        assert rows["ddos.victim.net"]["flagged"] == 1
        assert rows["ddos.loud.net"]["flagged"] == 0

    def test_case_and_dot_insensitive(self):
        det = DdosDetector()
        for qname in ("WWW.Example.COM.", "www.example.com"):
            det.observe(make_txn(qname=qname))
        rows = dict(det.cut(0.0, 60.0))
        assert rows["ddos.example.com"]["distinct"] == 1


class TestNohDetector:
    def test_first_window_all_new_then_suppressed(self):
        det = NohDetector(min_noh=5.0, warmup=0, ratio=4.0)
        qnames = ["host%02d.corp.org" % i for i in range(30)]
        rows = window(det, qnames, start=0.0)
        assert rows["noh.corp.org"]["noh"] == 30
        # the same hostnames again: all remembered, nothing new
        rows = window(det, qnames, start=60.0)
        assert rows["noh.corp.org"]["noh"] == 0

    def test_generation_rotation_forgets_old_names(self):
        det = NohDetector(min_noh=1.0, warmup=0, generation_windows=2)
        qnames = ["a.gen.org", "b.gen.org"]
        window(det, qnames, start=0.0)     # cut 1
        window(det, [], start=60.0)        # cut 2 -> rotation
        window(det, [], start=120.0)       # cut 3
        window(det, [], start=180.0)       # cut 4 -> rotation again
        rows = window(det, qnames, start=240.0)
        # both generations rotated past the names: new again
        assert rows["noh.gen.org"]["noh"] == 2


class TestDetectorSet:
    def test_cut_concatenates_in_order(self):
        detectors = build_detectors(True)
        detectors.observe(make_txn(qname="www.example.com"))
        rows = detectors.cut(0.0, 60.0)
        names = [key for key, _ in rows if "." not in key]
        assert names == ["exfil", "ddos", "noh"]

    def test_state_ship_equals_local_observe(self):
        """take_state on one set + absorb on another == observing
        directly: the sharded path in miniature."""
        qnames = ["%06x.shard.io" % (i * 40503 % 2**24) for i in range(80)]
        local = build_detectors(True)
        worker = build_detectors(True)
        coordinator = build_detectors(True)
        for qname in qnames:
            txn = make_txn(qname=qname)
            local.observe(txn)
            worker.observe(txn)
        for state in worker.take_states(0.0):
            assert isinstance(state, DetectorWindowState)
            assert state.dataset == DETECTOR_DATASET
            # states cross a process boundary in production
            coordinator.absorb(pickle.loads(pickle.dumps(state,
                                                         protocol=5)))
        assert coordinator.cut(0.0, 60.0) == local.cut(0.0, 60.0)

    def test_absorb_unknown_detector_rejected(self):
        detectors = build_detectors(["exfil"])
        state = DetectorWindowState("ddos", 0.0, None)
        with pytest.raises(ValueError, match="unknown detector"):
            detectors.absorb(state)

    def test_absorb_order_invariant(self):
        """Shard states absorb commutatively -- the coordinator need
        not sort by shard."""
        streams = [["%05x.order.net" % ((i * (j + 3)) % 2**20)
                    for i in range(50)] for j in range(3)]
        states = []
        for stream in streams:
            worker = build_detectors(True)
            for qname in stream:
                worker.observe(make_txn(qname=qname))
            states.append(worker.take_states(0.0))
        forward = build_detectors(True)
        backward = build_detectors(True)
        for shard_states in states:
            for state in shard_states:
                forward.absorb(state)
        for shard_states in reversed(states):
            for state in shard_states:
                backward.absorb(state)
        assert forward.cut(0.0, 60.0) == backward.cut(0.0, 60.0)
