"""Detection-quality gates: the subsystem's acceptance criteria.

One adversarial scenario carrying both labeled attacks (a DNS tunnel
and a water-torture flood) runs once per module; every detector must
clear precision >= 0.9 and recall >= 0.8 against the simulator's
ground truth, with a bounded time-to-detection.
"""

import pytest

from repro.analysis.detectquality import (detect_quality,
                                          evaluate_detection,
                                          meets_floors,
                                          render_detect_quality)
from repro.observatory import Observatory
from repro.simulation.scenario import (Scenario, TunnelAttack,
                                       WaterTorture)
from repro.simulation.sie import SieChannel

PRECISION_FLOOR = 0.9
RECALL_FLOOR = 0.8

#: attacks start at window 3 (after the 2-window detector warm-up)
ATTACK_START = 180.0


@pytest.fixture(scope="module")
def adversarial_run():
    """Simulate both attacks, ingest with all detectors; returns
    (labels, _detector dumps)."""
    scenario = Scenario.tiny(
        duration=480.0, client_qps=30.0,
        scripted_events=[
            TunnelAttack(at=ATTACK_START, qps=20.0),
            WaterTorture(at=ATTACK_START, qps=25.0),
        ])
    channel = SieChannel(scenario)
    labels = channel.attack_labels()
    obs = Observatory(datasets=[("qname", 512)], window_seconds=60.0,
                      detectors=True)
    obs.consume(channel.run())
    obs.finish()
    return labels, obs.dumps["_detector"]


def test_ground_truth_labels(adversarial_run):
    labels, _ = adversarial_run
    assert sorted(label["kind"] for label in labels) == \
        ["tunnel", "watertorture"]
    for label in labels:
        assert label["start"] == ATTACK_START
        assert label["end"] == 480.0
        assert label["esld"]
    # distinct auto-picked victims
    assert len({label["esld"] for label in labels}) == 2


def test_every_detector_clears_the_floors(adversarial_run):
    labels, dumps = adversarial_run
    series, scores = detect_quality(dumps, labels)
    assert sorted(scores) == ["ddos", "exfil", "noh"]
    for name, score in scores.items():
        assert score.precision is not None, name
        assert score.precision >= PRECISION_FLOOR, \
            "%s precision %.3f: %r" % (name, score.precision,
                                       score.as_dict())
        assert score.recall is not None, name
        assert score.recall >= RECALL_FLOOR, \
            "%s recall %.3f: %r" % (name, score.recall, score.as_dict())
    assert meets_floors(scores, PRECISION_FLOOR, RECALL_FLOOR)


def test_time_to_detection_is_bounded(adversarial_run):
    """Each detector fires within two windows of its attack start."""
    labels, dumps = adversarial_run
    scores = evaluate_detection(dumps, labels)
    for name, score in scores.items():
        assert score.time_to_detection, name
        for esld, ttd in score.time_to_detection.items():
            assert 0.0 <= ttd <= 120.0, (name, esld, ttd)


def test_detectors_stay_quiet_before_the_attack(adversarial_run):
    """No window before the attack start flags anything: the simulated
    benign workload does not trip the thresholds."""
    _, dumps = adversarial_run
    for dump in dumps:
        if dump.start_ts >= ATTACK_START:
            continue
        for key, row in dump.rows:
            assert row.get("flagged", 0) == 0, (dump.start_ts, key, row)


def test_render_marks_pass(adversarial_run):
    labels, dumps = adversarial_run
    series, scores = detect_quality(dumps, labels)
    text = render_detect_quality(series, scores)
    assert text.startswith("Detection quality: PASS")
    for name in ("ddos", "exfil", "noh"):
        assert name in text
