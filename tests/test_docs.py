"""Documentation integrity: the docs must match the repository."""

import os
import re

import pytest

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def read(name):
    with open(os.path.join(ROOT, name), encoding="utf-8") as fh:
        return fh.read()


@pytest.mark.parametrize("name", ["README.md", "DESIGN.md",
                                  "EXPERIMENTS.md"])
def test_doc_exists_and_nonempty(name):
    text = read(name)
    assert len(text) > 1000


def test_design_references_existing_benches():
    text = read("DESIGN.md")
    for match in re.findall(r"benchmarks/(bench_\w+\.py)", text):
        assert os.path.exists(os.path.join(ROOT, "benchmarks", match)), match


def test_experiments_references_existing_benches():
    text = read("EXPERIMENTS.md")
    for match in re.findall(r"bench_\w+\.py", text):
        assert os.path.exists(os.path.join(ROOT, "benchmarks", match)), match


def test_readme_examples_exist():
    text = read("README.md")
    for match in re.findall(r"`(\w+\.py)`", text):
        assert os.path.exists(os.path.join(ROOT, "examples", match)), match


def test_design_module_map_matches_source():
    """Every module named in DESIGN.md's inventory exists on disk."""
    text = read("DESIGN.md")
    section = text.split("## 3. System inventory")[1].split("## 4.")[0]
    for line in section.splitlines():
        match = re.match(r"\s+(\w+\.py)\s", line)
        if not match:
            continue
        name = match.group(1)
        hits = []
        for dirpath, _, files in os.walk(os.path.join(ROOT, "src")):
            if name in files:
                hits.append(dirpath)
        assert hits, "DESIGN.md names missing module %s" % name


def test_every_experiment_has_a_bench():
    """DESIGN.md's per-experiment index must map to real bench files."""
    text = read("DESIGN.md")
    section = text.split("## 4. Per-experiment index")[1].split("## 5.")[0]
    benches = set(re.findall(r"`benchmarks/(bench_\w+\.py)`", section))
    assert len(benches) >= 15
    for bench in benches:
        assert os.path.exists(os.path.join(ROOT, "benchmarks", bench)), bench


def test_all_benches_are_documented():
    """Every bench file appears in DESIGN.md or EXPERIMENTS.md."""
    docs = read("DESIGN.md") + read("EXPERIMENTS.md")
    for name in os.listdir(os.path.join(ROOT, "benchmarks")):
        if name.startswith("bench_") and name.endswith(".py"):
            assert name in docs, "%s is undocumented" % name
