"""Live-push serving tests: flush broker, ``/series?follow=``
long-polls, the SSE ``/stream`` endpoint, monotonic uptime and signal
restoration -- the serving half of the ``run`` daemon, exercised
in-process (the daemon itself is covered end-to-end in
``tests/test_daemon.py``)."""

import asyncio
import json
import signal
import threading
import time

from repro.observatory.tsv import TimeSeriesData, write_tsv
from repro.server import build_server
from repro.server.http import ObservatoryServer
from repro.server.push import FlushBroker
from tests.server.util import http_get


def make_window(directory, start, dataset="srvip"):
    data = TimeSeriesData(dataset, "minutely", start,
                          columns=["hits", "ok"],
                          rows=[("192.0.2.1",
                                 {"hits": 10 + start, "ok": 9})],
                          stats={"seen": 20, "kept": 15})
    return write_tsv(str(directory), data)


def run_live(directory, scenario, **server_kw):
    """Serve *directory* with a flush broker wired, daemon-style.

    *scenario(server, app, broker, flush)* gets a ``flush(start)``
    helper reproducing the daemon's flush hook: write the TSV,
    reconcile the store via ``notify_flush``, ring the broker.
    """

    async def _main():
        loop = asyncio.get_running_loop()
        broker = FlushBroker(loop)
        server, app = await build_server(str(directory), port=0,
                                         broker=broker, **server_kw)

        def flush(start, dataset="srvip"):
            path = make_window(directory, start, dataset)
            app.store.notify_flush(path)
            broker.publish(path)
            return path

        try:
            return await scenario(server, app, broker, flush)
        finally:
            broker.close()
            server.begin_shutdown()
            await server.wait_closed()

    return asyncio.run(_main())


class TestFlushBroker:
    def test_publish_wakes_waiter(self):
        async def main():
            broker = FlushBroker()
            task = asyncio.ensure_future(broker.wait(5.0))
            await asyncio.sleep(0)
            broker.publish()
            return await asyncio.wait_for(task, 1.0)

        assert asyncio.run(main()) is True

    def test_timeout_returns_false(self):
        async def main():
            return await FlushBroker().wait(0.05)

        assert asyncio.run(main()) is False

    def test_close_wakes_every_waiter_and_later_ones(self):
        async def main():
            broker = FlushBroker()
            tasks = [asyncio.ensure_future(broker.wait(5.0))
                     for _ in range(3)]
            await asyncio.sleep(0)
            broker.close()
            woken = await asyncio.gather(*tasks)
            late = await broker.wait(5.0)  # immediate once closed
            return woken, late

        woken, late = asyncio.run(main())
        assert woken == [True, True, True]
        assert late is True

    def test_publish_threadsafe_crosses_threads(self):
        async def main():
            broker = FlushBroker()
            task = asyncio.ensure_future(broker.wait(5.0))
            await asyncio.sleep(0)
            thread = threading.Thread(target=broker.publish_threadsafe)
            thread.start()
            woke = await asyncio.wait_for(task, 2.0)
            thread.join()
            return woke, broker.flushes

        woke, flushes = asyncio.run(main())
        assert woke is True
        assert flushes == 1

    def test_subscription_counts(self):
        async def main():
            broker = FlushBroker()
            with broker.subscribe():
                inside = broker.subscribers
            return inside, broker.subscribers

        assert asyncio.run(main()) == (1, 0)


class TestFollowLongPoll:
    def test_waiter_woken_by_flush(self, tmp_path):
        async def scenario(server, app, broker, flush):
            flush(0)
            task = asyncio.ensure_future(http_get(
                server.port, "/series/srvip?follow=0&timeout=10"))
            await asyncio.sleep(0.1)
            started = time.monotonic()
            flush(60)
            resp = await asyncio.wait_for(task, 5.0)
            return resp, time.monotonic() - started

        resp, elapsed = run_live(tmp_path, scenario)
        assert resp.status == 200
        doc = resp.json()
        assert [w["start_ts"] for w in doc["windows"]] == [60]
        assert doc["next_cursor"] == 60
        assert doc["timed_out"] is False
        assert doc["eof"] is False
        assert elapsed < 2.0, "woke by push, not by timeout"

    def test_empty_follow_tails_from_now(self, tmp_path):
        async def scenario(server, app, broker, flush):
            flush(0)
            flush(60)
            task = asyncio.ensure_future(http_get(
                server.port, "/series/srvip?follow=&timeout=10"))
            await asyncio.sleep(0.1)
            flush(120)
            return await asyncio.wait_for(task, 5.0)

        doc = run_live(tmp_path, scenario).json()
        # windows already on disk are skipped; only the live one lands
        assert [w["start_ts"] for w in doc["windows"]] == [120]

    def test_timeout_echoes_the_cursor(self, tmp_path):
        async def scenario(server, app, broker, flush):
            flush(0)
            return await http_get(
                server.port, "/series/srvip?follow=0&timeout=0.2")

        doc = run_live(tmp_path, scenario).json()
        assert doc["windows"] == []
        assert doc["timed_out"] is True
        # the echoed cursor is a valid next follow= value: no window
        # is skipped by re-subscribing after a timeout
        assert doc["next_cursor"] == 0

    def test_subscribing_before_the_dataset_exists(self, tmp_path):
        async def scenario(server, app, broker, flush):
            task = asyncio.ensure_future(http_get(
                server.port, "/series/srvip?follow=&timeout=10"))
            await asyncio.sleep(0.1)
            flush(0)  # the daemon's very first window
            return await asyncio.wait_for(task, 5.0)

        resp = run_live(tmp_path, scenario)
        assert resp.status == 200, "follow must not 404 an empty store"
        assert [w["start_ts"] for w in resp.json()["windows"]] == [0]

    def test_broker_close_drains_with_eof(self, tmp_path):
        async def scenario(server, app, broker, flush):
            flush(0)
            task = asyncio.ensure_future(http_get(
                server.port, "/series/srvip?follow=0&timeout=10"))
            await asyncio.sleep(0.1)
            broker.close()  # SIGTERM's drain signal
            return await asyncio.wait_for(task, 5.0)

        doc = run_live(tmp_path, scenario).json()
        assert doc["eof"] is True
        assert doc["windows"] == []

    def test_subscriber_counted_while_waiting(self, tmp_path):
        async def scenario(server, app, broker, flush):
            flush(0)
            task = asyncio.ensure_future(http_get(
                server.port, "/series/srvip?follow=0&timeout=10"))
            await asyncio.sleep(0.2)
            during = broker.subscribers
            flush(60)
            await asyncio.wait_for(task, 5.0)
            await asyncio.sleep(0.05)
            return during, broker.subscribers

        during, after = run_live(tmp_path, scenario)
        assert during == 1
        assert after == 0

    def test_bad_follow_value_is_400(self, tmp_path):
        async def scenario(server, app, broker, flush):
            flush(0)
            return await http_get(server.port,
                                  "/series/srvip?follow=banana")

        assert run_live(tmp_path, scenario).status == 400


def dechunk_prefix(raw):
    """Decode as much complete chunked framing as *raw* holds."""
    body = bytearray()
    rest = raw
    while rest:
        size_line, sep, after = rest.partition(b"\r\n")
        if not sep:
            break
        try:
            size = int(size_line, 16)
        except ValueError:
            break
        if size == 0 or len(after) < size + 2:
            break
        body += after[:size]
        rest = after[size + 2:]
    return bytes(body)


def parse_sse(body):
    """Split an SSE byte stream into [{field: value}] event dicts."""
    events = []
    for block in body.decode("utf-8").split("\n\n"):
        if not block.strip():
            continue
        event = {}
        for line in block.split("\n"):
            if line.startswith(":"):
                event.setdefault("comment", line[1:].strip())
                continue
            name, _, value = line.partition(":")
            event[name.strip()] = value.strip()
        events.append(event)
    return events


async def sse_connect(port, target, headers=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    lines = ["GET %s HTTP/1.1" % target, "Host: sse",
             "Accept: text/event-stream"]
    for name, value in (headers or {}).items():
        lines.append("%s: %s" % (name, value))
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
    await writer.drain()
    head = await reader.readuntil(b"\r\n\r\n")
    return reader, writer, head


async def read_until(reader, buf, predicate, timeout=5.0):
    while not predicate(buf):
        chunk = await asyncio.wait_for(reader.read(4096), timeout)
        if not chunk:
            break
        buf += chunk
    return buf


class TestSseStream:
    def test_framing_pushes_and_eof(self, tmp_path):
        async def scenario(server, app, broker, flush):
            flush(0)
            reader, writer, head = await sse_connect(
                server.port, "/stream/srvip?cursor=-1")
            buf = await read_until(reader, b"",
                                   lambda b: b"event: window" in b)
            flush(60)
            buf = await read_until(
                reader, buf, lambda b: b.count(b"event: window") >= 2)
            broker.close()
            buf = await read_until(reader, buf,
                                   lambda b: b"event: eof" in b)
            writer.close()
            return head, buf

        head, raw = run_live(tmp_path, scenario)
        text = head.decode("latin-1")
        assert " 200 " in text.split("\r\n")[0]
        assert "text/event-stream" in text
        assert "Transfer-Encoding: chunked" in text
        assert "Content-Encoding" not in text, "SSE must not buffer in gzip"
        events = parse_sse(dechunk_prefix(raw))
        assert events[0].get("retry") == "2000"
        windows = [e for e in events if e.get("event") == "window"]
        assert [e["id"] for e in windows] == ["0", "60"]
        for event in windows:
            payload = json.loads(event["data"])
            assert payload["start_ts"] == int(event["id"])
            assert payload["rows"]
        assert events[-1].get("event") == "eof"

    def test_last_event_id_resumes_exclusively(self, tmp_path):
        async def scenario(server, app, broker, flush):
            flush(0)
            flush(60)
            reader, writer, _ = await sse_connect(
                server.port, "/stream/srvip",
                headers={"Last-Event-ID": "0"})
            buf = await read_until(reader, b"",
                                   lambda b: b"event: window" in b)
            writer.close()
            return buf

        events = parse_sse(dechunk_prefix(run_live(tmp_path, scenario)))
        windows = [e for e in events if e.get("event") == "window"]
        # window 0 is what the client already holds: not re-sent
        assert [e["id"] for e in windows] == ["60"]

    def test_stream_counts_subscribers(self, tmp_path):
        async def scenario(server, app, broker, flush):
            flush(0)
            reader, writer, _ = await sse_connect(
                server.port, "/stream/srvip?cursor=-1")
            await read_until(reader, b"",
                             lambda b: b"event: window" in b)
            await asyncio.sleep(0.05)
            during = broker.subscribers
            writer.close()
            return during

        assert run_live(tmp_path, scenario) == 1


class TestHealthCoversTheDaemon:
    def test_daemon_and_broker_sections(self, tmp_path):
        make_window(tmp_path, 0)

        def status():
            return {"running": True, "windows_flushed": 7}

        async def scenario(server, app, broker, flush):
            return await http_get(server.port, "/platform/health")

        doc = run_live(tmp_path, scenario, daemon_status=status).json()
        assert doc["daemon"] == {"running": True, "windows_flushed": 7}
        assert doc["broker"]["closed"] == 0
        assert doc["broker"]["subscribers"] == 0


class TestMonotonicUptime:
    def test_uptime_ignores_wall_clock_steps(self, tmp_path):
        make_window(tmp_path, 0)

        async def scenario(server, app, broker, flush):
            # simulate 100 s of runtime without touching wall clock
            app._started_monotonic = time.monotonic() - 100.0
            wall = app.started_at_unix
            resp = await http_get(server.port, "/platform/health")
            return wall, resp.json()["server"]

        wall, row = run_live(tmp_path, scenario)
        assert 99.0 <= row["uptime_s"] <= 105.0
        # the wall-clock field is display-only and unaffected
        assert abs(row["started_at_unix"] - round(wall, 1)) < 0.2


class TestSignalRestore:
    def test_serve_forever_restores_prior_handlers(self):
        def custom_handler(signum, frame):  # pragma: no cover
            pass

        previous_term = signal.signal(signal.SIGTERM, custom_handler)
        previous_int = signal.signal(signal.SIGINT, custom_handler)
        try:
            async def main():
                server = ObservatoryServer(None, port=0)
                await server.start()
                asyncio.get_running_loop().call_later(
                    0.05, server.begin_shutdown)
                await server.serve_forever(install_signals=True)

            asyncio.run(main())
            # the embedding process's handlers are back, not SIG_DFL
            # and not asyncio's internal trampoline
            assert signal.getsignal(signal.SIGTERM) is custom_handler
            assert signal.getsignal(signal.SIGINT) is custom_handler
        finally:
            signal.signal(signal.SIGTERM, previous_term)
            signal.signal(signal.SIGINT, previous_int)
