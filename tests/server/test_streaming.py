"""Protocol conformance for the streamed read path.

The contract under test: a streamed answer is the *same entity* as a
buffered one -- chunked transfer-encoding is a wire detail, invisible
once decoded.  So these tests decode the framing with a raw socket
client (no http library between us and the bytes), compare against
the buffered renderer byte for byte, and poke the edges: gzip over
chunks, 304 before the first chunk, a client that vanishes
mid-stream, and the non-streamed routes keeping their exact
pre-streaming shape.
"""

import asyncio
import gzip
import json

import pytest

from repro.observatory.pipeline import Observatory
from repro.server import build_server
from repro.server.http import ObservatoryServer, Response, StreamingResponse
from tests.server.util import http_get
from tests.util import make_txn

#: a threshold no fixture reaches: forces the buffered path
NEVER_STREAM = 1 << 30


@pytest.fixture(scope="module")
def series_dir(tmp_path_factory):
    """Windows wide enough that /series/qname spans many chunk frames."""
    directory = tmp_path_factory.mktemp("streaming")
    obs = Observatory(datasets=[("srvip", 64), ("qname", 512)],
                      output_dir=str(directory), use_bloom_gate=False,
                      skip_recent_inserts=False)
    for i in range(600):
        obs.ingest(make_txn(ts=i * 0.5,
                            qname="host%03d.example.com" % (i % 150),
                            server_ip="192.0.2.%d" % (1 + i % 5)))
    obs.finish()
    return directory


def run_with_server(series_dir, scenario, **server_kw):
    """Start a server on a free port, run *scenario(server, app)*."""

    async def _main():
        server, app = await build_server(str(series_dir), port=0,
                                         **server_kw)
        try:
            return await scenario(server, app)
        finally:
            server.begin_shutdown()
            await server.wait_closed()

    return asyncio.run(_main())


async def raw_get(port, target, headers=None):
    """GET over a raw socket; return (status, headers, raw body bytes).

    ``Connection: close`` so the response body is everything up to
    EOF -- the chunked framing is returned *undecoded* for the tests
    to pick apart themselves.
    """
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        lines = ["GET %s HTTP/1.1" % target, "Host: raw"]
        for name, value in (headers or {}).items():
            lines.append("%s: %s" % (name, value))
        lines.append("Connection: close")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        await writer.drain()
        head = await reader.readuntil(b"\r\n\r\n")
        raw = await reader.read(-1)
    finally:
        writer.close()
    status_line, _, header_block = head.decode("latin-1").partition("\r\n")
    status = int(status_line.split(" ")[1])
    parsed = {}
    for line in header_block.split("\r\n"):
        if not line.strip():
            continue
        name, _, value = line.partition(":")
        parsed[name.strip().lower()] = value.strip()
    return status, parsed, raw


def decode_chunked(raw):
    """Walk the chunked framing by hand; return (body, frame count).

    Asserts the exact grammar: ``<hex size> CRLF <size bytes> CRLF``
    per frame, a terminal ``0 CRLF CRLF``, nothing after it.
    """
    body = bytearray()
    frames = 0
    rest = raw
    while True:
        size_line, sep, rest = rest.partition(b"\r\n")
        assert sep == b"\r\n", "frame missing its size-line CRLF"
        size = int(size_line, 16)  # hex per RFC 7230 section 4.1
        if size == 0:
            assert rest == b"\r\n", "trailer after the terminal chunk"
            return bytes(body), frames
        assert len(rest) >= size + 2, "truncated chunk data"
        body += rest[:size]
        assert rest[size:size + 2] == b"\r\n", "chunk data not CRLF-closed"
        rest = rest[size + 2:]
        frames += 1


class TestChunkedFraming:
    def test_streamed_body_is_byte_identical_to_buffered(self, series_dir):
        async def buffered(server, app):
            return await raw_get(server.port, "/series/qname")

        async def streamed(server, app):
            return await raw_get(server.port, "/series/qname")

        b_status, b_headers, b_raw = run_with_server(
            series_dir, buffered, stream_threshold=NEVER_STREAM)
        s_status, s_headers, s_raw = run_with_server(
            series_dir, streamed, stream_threshold=0)

        assert b_status == s_status == 200
        # buffered: the unchanged pre-streaming shape
        assert "content-length" in b_headers
        assert "transfer-encoding" not in b_headers
        assert int(b_headers["content-length"]) == len(b_raw)
        # streamed: chunked, no Content-Length (they are exclusive)
        assert s_headers["transfer-encoding"] == "chunked"
        assert "content-length" not in s_headers
        body, frames = decode_chunked(s_raw)
        assert frames >= 2, "fixture too small to exercise coalescing"
        # the same entity: bytes and validators match exactly
        assert body == b_raw
        assert s_headers["etag"] == b_headers["etag"]
        json.loads(body.decode("utf-8"))

    def test_chunked_composes_with_gzip(self, series_dir):
        async def scenario(server, app):
            plain = await raw_get(server.port, "/series/qname")
            zipped = await raw_get(server.port, "/series/qname",
                                   headers={"Accept-Encoding": "gzip"})
            return plain, zipped

        (_, p_headers, p_raw), (z_status, z_headers, z_raw) = \
            run_with_server(series_dir, scenario, stream_threshold=0)
        assert z_status == 200
        assert z_headers["transfer-encoding"] == "chunked"
        assert z_headers["content-encoding"] == "gzip"
        assert z_headers["vary"] == "Accept-Encoding"
        plain_body, _ = decode_chunked(p_raw)
        zipped_body, _ = decode_chunked(z_raw)
        assert len(zipped_body) < len(plain_body)
        # one gzip stream across all fragments, decodable only after
        # chunk de-framing (the layering the RFC prescribes)
        assert gzip.decompress(zipped_body) == plain_body

    def test_304_answers_before_any_chunk(self, series_dir):
        async def scenario(server, app):
            first = await raw_get(server.port, "/series/qname")
            parses = []
            inner = app.store.read_window

            def counting(ref):
                parses.append(ref)
                return inner(ref)

            app.store.read_window = counting
            etag = first[1]["etag"]
            second = await raw_get(server.port, "/series/qname",
                                   headers={"If-None-Match": etag})
            return first, second, len(parses)

        first, second, parses = run_with_server(series_dir, scenario,
                                                stream_threshold=0)
        assert first[0] == 200
        status, headers, raw = second
        assert status == 304
        assert raw == b""
        # a 304 is never chunked: the conditional check ran before the
        # streaming machinery was even constructed
        assert "transfer-encoding" not in headers
        assert headers["etag"] == first[1]["etag"]
        assert parses == 0

    def test_streamed_bytes_and_first_byte_instrumented(self, series_dir):
        async def scenario(server, app):
            _, _, raw = await raw_get(server.port, "/series/qname")
            body, _ = decode_chunked(raw)
            return (len(body), app._streamed["series"].value,
                    app._first_byte["series"]._hist.count)

        body_len, streamed, observed = run_with_server(
            series_dir, scenario, stream_threshold=0)
        assert streamed == body_len  # counts pre-gzip entity bytes
        assert observed == 1


class TestMidStreamDisconnect:
    def test_server_survives_and_slot_is_released(self, series_dir):
        async def scenario():
            state = {"closed": False}

            def forever():
                try:
                    while True:
                        yield b"x" * 65536
                finally:  # GeneratorExit lands here on response.close()
                    state["closed"] = True

            async def handler(request):
                if request.path == "/finite":
                    return Response.json({"ok": True})
                return StreamingResponse(forever())

            server = ObservatoryServer(handler, port=0, max_connections=1)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                writer.write(b"GET /endless HTTP/1.1\r\nHost: t\r\n\r\n")
                await writer.drain()
                head = await reader.readuntil(b"\r\n\r\n")
                assert b"Transfer-Encoding: chunked" in head
                await reader.readexactly(4096)  # we are mid-body
                writer.transport.abort()  # RST: a crash, not a close
                for _ in range(500):
                    if state["closed"] and server.active_connections == 0:
                        break
                    await asyncio.sleep(0.01)
                # the fragment iterator was closed (store read path
                # unwinds), the only connection slot came back...
                assert state["closed"]
                assert server.active_connections == 0
                # ...and the server still answers
                follow_up = await http_get(server.port, "/finite")
                return follow_up
            finally:
                server.begin_shutdown()
                await server.wait_closed()

        follow_up = asyncio.run(scenario())
        assert follow_up.status == 200
        assert follow_up.json() == {"ok": True}


class TestNonStreamedRoutesUnchanged:
    @pytest.mark.parametrize("target", ["/datasets", "/topk/srvip?n=3",
                                        "/platform/health"])
    def test_content_length_framing_kept(self, series_dir, target):
        async def scenario(server, app):
            return await raw_get(server.port, target)

        status, headers, raw = run_with_server(series_dir, scenario,
                                               stream_threshold=0)
        # stream_threshold=0 streams "everything with a body" only on
        # /series and /key; these routes keep Content-Length framing
        assert status == 200
        assert "transfer-encoding" not in headers
        assert int(headers["content-length"]) == len(raw)
        json.loads(raw.decode("utf-8"))

    def test_head_still_rejected_with_allow(self, series_dir):
        async def scenario(server, app):
            return await http_get(server.port, "/series/qname",
                                  method="HEAD")

        resp = run_with_server(series_dir, scenario, stream_threshold=0)
        assert resp.status == 405
        assert resp.headers["allow"] == "GET"


class TestCursorPaging:
    def test_pages_reassemble_the_full_answer(self, series_dir):
        async def scenario(server, app):
            full = (await http_get(server.port,
                                   "/series/srvip")).json()
            pages = []
            cursor = -1  # exclusive: strictly below the first window
            while cursor is not None:
                page = (await http_get(
                    server.port,
                    "/series/srvip?limit=2&cursor=%s" % cursor)).json()
                pages.append(page)
                cursor = page["next_cursor"]
            return full, pages

        full, pages = run_with_server(series_dir, scenario)
        assert len(pages) >= 2
        assert all(len(p["windows"]) <= 2 for p in pages)
        walked = [w for p in pages for w in p["windows"]]
        # oldest-first pages concatenate to exactly the full answer
        assert walked == full["windows"]
        assert pages[-1]["next_cursor"] is None
        # the cursor is exclusive-of-returned-rows: it names the last
        # window the client already holds, never one it has not seen
        assert pages[0]["next_cursor"] == \
            pages[0]["windows"][-1]["start_ts"]

    def test_cursor_equal_to_a_window_excludes_it(self, series_dir):
        async def scenario(server, app):
            full = (await http_get(server.port,
                                   "/series/srvip")).json()
            first_ts = full["windows"][0]["start_ts"]
            after = (await http_get(
                server.port,
                "/series/srvip?cursor=%s" % first_ts)).json()
            return full, after

        full, after = run_with_server(series_dir, scenario)
        # resuming with a held window's start_ts must not re-send it
        assert [w["start_ts"] for w in after["windows"]] == \
            [w["start_ts"] for w in full["windows"][1:]]

    def test_flush_between_pages_skips_and_duplicates_nothing(
            self, tmp_path):
        """Regression: a window flushing mid-pagination must not
        shift the page walk -- every window is delivered exactly once
        and the late flush is picked up by the cursor chain."""
        def ingest(ts_range):
            obs = Observatory(datasets=[("srvip", 64)],
                              output_dir=str(tmp_path),
                              use_bloom_gate=False,
                              skip_recent_inserts=False)
            for i in ts_range:
                obs.ingest(make_txn(ts=float(i),
                                    server_ip="192.0.2.%d" % (1 + i % 5)))
            obs.finish()

        ingest(range(0, 240))  # windows at 0, 60, 120, 180

        async def scenario(server, app):
            pages = []
            cursor = -1
            while cursor is not None:
                page = (await http_get(
                    server.port,
                    "/series/srvip?limit=2&cursor=%s" % cursor)).json()
                pages.append(page)
                if len(pages) == 1:
                    # a new window flushes between page 1 and page 2
                    ingest(range(240, 300))  # window at 240
                cursor = page["next_cursor"]
            return pages

        pages = run_with_server(tmp_path, scenario, follow=True)
        walked = [w["start_ts"] for p in pages for w in p["windows"]]
        assert walked == [0, 60, 120, 180, 240]
        assert len(walked) == len(set(walked)), "duplicated a window"

    def test_cursor_past_the_end_is_empty_not_error(self, series_dir):
        async def scenario(server, app):
            return await http_get(server.port,
                                  "/series/srvip?cursor=999999999")

        resp = run_with_server(series_dir, scenario)
        assert resp.status == 200
        payload = resp.json()
        assert payload["windows"] == []
        assert payload["next_cursor"] is None


class TestDefaultBind:
    def test_cli_serve_defaults_to_loopback(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "somedir"])
        assert args.host == "127.0.0.1"

    def test_server_and_builder_default_to_loopback(self, series_dir):
        assert ObservatoryServer(None).host == "127.0.0.1"

        async def scenario(server, app):
            return server.host

        assert run_with_server(series_dir, scenario) == "127.0.0.1"

class TestTopkWindowsStreaming:
    def test_streamed_body_is_byte_identical_to_buffered(self, series_dir):
        """/topk/windows rides the same fragment renderer as /series:
        the chunked entity equals the buffered one byte for byte."""
        async def scenario(server, app):
            return await raw_get(server.port, "/topk/windows/qname?n=4")

        b_status, b_headers, b_raw = run_with_server(
            series_dir, scenario, stream_threshold=NEVER_STREAM)
        s_status, s_headers, s_raw = run_with_server(
            series_dir, scenario, stream_threshold=0)
        assert b_status == s_status == 200
        assert "transfer-encoding" not in b_headers
        assert s_headers["transfer-encoding"] == "chunked"
        body, frames = decode_chunked(s_raw)
        assert frames >= 1  # small fixture: frames may coalesce to one
        assert body == b_raw
        assert s_headers["etag"] == b_headers["etag"]
        payload = json.loads(body.decode("utf-8"))
        assert payload["windows"] and payload["n"] == 4
