"""End-to-end tests for the asyncio HTTP query API."""

import asyncio
import gzip
import json
import os
import signal

import pytest

from repro.observatory.pipeline import Observatory
from repro.observatory.store import SeriesStore
from repro.server import build_server
from repro.server.app import ObservatoryApp
from repro.server.http import ObservatoryServer
from tests.server.util import http_get, read_response
from tests.util import make_txn


@pytest.fixture(scope="module")
def series_dir(tmp_path_factory):
    """A replayed fixture directory: srvip windows + _platform rows."""
    directory = tmp_path_factory.mktemp("series")
    obs = Observatory(datasets=[("srvip", 64)], output_dir=str(directory),
                      use_bloom_gate=False, skip_recent_inserts=False,
                      telemetry=True)
    for i in range(600):
        obs.ingest(make_txn(ts=i * 0.5,
                            server_ip="192.0.2.%d" % (1 + i % 5)))
    obs.finish()
    return directory


def run_with_server(series_dir, scenario, **server_kw):
    """Start a server on a free port, run *scenario(server, app)*."""

    async def _main():
        server, app = await build_server(str(series_dir), port=0,
                                         **server_kw)
        try:
            return await scenario(server, app)
        finally:
            server.begin_shutdown()
            await server.wait_closed()

    return asyncio.run(_main())


class TestEndpoints:
    def test_datasets(self, series_dir):
        async def scenario(server, app):
            return await http_get(server.port, "/datasets")

        resp = run_with_server(series_dir, scenario)
        assert resp.status == 200
        payload = resp.json()
        assert "srvip" in payload["datasets"]
        assert "_platform" in payload["datasets"]
        assert payload["datasets"]["srvip"]["minutely"]["windows"] >= 4

    def test_series_with_range_and_limit(self, series_dir):
        async def scenario(server, app):
            full = await http_get(server.port, "/series/srvip")
            limited = await http_get(
                server.port, "/series/srvip?limit=2&start=60")
            return full, limited

        full, limited = run_with_server(series_dir, scenario)
        assert full.status == limited.status == 200
        windows = full.json()["windows"]
        assert len(windows) >= 4
        assert all(w["rows"] for w in windows)
        lim = limited.json()["windows"]
        assert len(lim) == 2
        # limit keeps the newest windows of the range
        assert lim[-1]["start_ts"] == windows[-1]["start_ts"]

    def test_topk_matches_store(self, series_dir):
        async def scenario(server, app):
            return await http_get(server.port, "/topk/srvip?n=3")

        resp = run_with_server(series_dir, scenario)
        top = resp.json()["top"]
        assert len(top) == 3
        store = SeriesStore(str(series_dir))
        want = store.topk("srvip", n=3)
        assert [item["key"] for item in top] == [k for k, _ in want]
        assert top[0]["rank"] == 1
        assert top[0]["value"] >= top[1]["value"]

    def test_key_series(self, series_dir):
        async def scenario(server, app):
            return await http_get(
                server.port, "/key/srvip/192.0.2.1?column=hits")

        resp = run_with_server(series_dir, scenario)
        payload = resp.json()
        assert payload["key"] == "192.0.2.1"
        assert len(payload["series"]) >= 4
        assert sum(v for _, v in payload["series"]) > 0

    def test_platform_health(self, series_dir):
        async def scenario(server, app):
            return await http_get(server.port, "/platform/health")

        resp = run_with_server(series_dir, scenario)
        payload = resp.json()
        assert payload["status"] in ("ok", "fail")
        assert payload["platform_windows"] >= 1
        rules = {v["rule"] for v in payload["verdicts"]}
        assert "capture-floor" in rules
        assert "store" in payload and "server" in payload

    def test_health_failing_rule_trips(self, series_dir):
        from repro.observatory.alerts import parse_rules

        rules = parse_rules(
            "impossible: tracker.*.capture_ratio >= 2.0")

        async def scenario(server, app):
            return await http_get(server.port, "/platform/health")

        resp = run_with_server(series_dir, scenario, rules=rules)
        payload = resp.json()
        assert payload["status"] == "fail"
        failing = [v for v in payload["verdicts"]
                   if v["status"] == "fail"]
        assert failing and failing[0]["rule"] == "impossible"
        assert failing[0]["value"] is not None


class TestConditionalAndCompression:
    def test_etag_roundtrip_yields_304(self, series_dir):
        async def scenario(server, app):
            first = await http_get(server.port, "/topk/srvip?n=5")
            etag = first.headers["etag"]
            second = await http_get(server.port, "/topk/srvip?n=5",
                                    headers={"If-None-Match": etag})
            differs = await http_get(server.port, "/topk/srvip?n=6",
                                     headers={"If-None-Match": etag})
            return first, second, differs

        first, second, differs = run_with_server(series_dir, scenario)
        assert first.status == 200
        assert second.status == 304
        assert second.body == b""
        assert second.headers["etag"] == first.headers["etag"]
        assert differs.status == 200  # different query, different entity

    def test_etag_changes_when_data_changes(self, series_dir, tmp_path):
        import shutil

        live = tmp_path / "live"
        shutil.copytree(series_dir, live)

        async def scenario(server, app):
            first = await http_get(server.port, "/topk/srvip")
            # a new window lands
            obs = Observatory(datasets=[("srvip", 64)],
                              output_dir=str(live),
                              use_bloom_gate=False,
                              skip_recent_inserts=False)
            for i in range(120):
                obs.ingest(make_txn(ts=100000 + i,
                                    server_ip="203.0.113.77"))
            obs.finish()
            second = await http_get(
                server.port, "/topk/srvip",
                headers={"If-None-Match": first.headers["etag"]})
            return first, second

        first, second = run_with_server(live, scenario, follow=True)
        assert first.status == 200
        assert second.status == 200  # not a 304: the entity changed
        assert second.headers["etag"] != first.headers["etag"]

    def test_repeat_query_served_from_body_cache(self, series_dir):
        async def scenario(server, app):
            calls = []
            inner = app.store.topk

            def counting(*args, **kwargs):
                calls.append(1)
                return inner(*args, **kwargs)

            app.store.topk = counting
            first = await http_get(server.port, "/topk/srvip?n=5")
            second = await http_get(server.port, "/topk/srvip?n=5")
            return first, second, len(calls)

        first, second, calls = run_with_server(series_dir, scenario)
        assert first.status == second.status == 200
        assert second.body == first.body
        # the repeat was answered from the (route, ETag) body cache
        assert calls == 1

    def test_gzip_negotiation(self, series_dir):
        async def scenario(server, app):
            plain = await http_get(server.port, "/series/srvip")
            zipped = await http_get(server.port, "/series/srvip",
                                    headers={"Accept-Encoding": "gzip"})
            return plain, zipped

        plain, zipped = run_with_server(series_dir, scenario)
        assert "content-encoding" not in plain.headers
        assert zipped.headers["content-encoding"] == "gzip"
        assert len(zipped.body) < len(plain.body)
        assert gzip.decompress(zipped.body) == plain.body

    def test_tiny_bodies_not_compressed(self, series_dir):
        async def scenario(server, app):
            return await http_get(server.port, "/key/srvip/192.0.2.1",
                                  headers={"Accept-Encoding": "gzip"})

        resp = run_with_server(series_dir, scenario)
        # the error path and small payloads skip compression
        if len(resp.body) < 256:
            assert "content-encoding" not in resp.headers


class TestErrorSurface:
    def test_unknown_dataset_404_json(self, series_dir):
        async def scenario(server, app):
            return await http_get(server.port, "/topk/nosuch")

        resp = run_with_server(series_dir, scenario)
        assert resp.status == 404
        payload = resp.json()
        assert "nosuch" in payload["error"]
        assert payload["status"] == 404

    def test_unknown_key_404_json(self, series_dir):
        async def scenario(server, app):
            return await http_get(server.port, "/key/srvip/10.9.9.9")

        resp = run_with_server(series_dir, scenario)
        assert resp.status == 404
        assert "10.9.9.9" in resp.json()["error"]

    def test_unknown_endpoint_404(self, series_dir):
        async def scenario(server, app):
            return await http_get(server.port, "/nope")

        assert run_with_server(series_dir, scenario).status == 404

    @pytest.mark.parametrize("target", [
        "/topk/srvip?n=abc",
        "/topk/srvip?n=0",
        "/topk/srvip?n=999999999",
        "/series/srvip?start=xyz",
        "/series/srvip?granularity=weekly",
        "/series/srvip?start=100&end=50",
        "/key/srvip/192.0.2.1?end=nope",
    ])
    def test_malformed_params_400_json(self, series_dir, target):
        async def scenario(server, app):
            return await http_get(server.port, target)

        resp = run_with_server(series_dir, scenario)
        assert resp.status == 400
        assert "error" in resp.json()

    def test_post_is_405_with_allow(self, series_dir):
        async def scenario(server, app):
            return await http_get(server.port, "/datasets",
                                  method="POST")

        resp = run_with_server(series_dir, scenario)
        assert resp.status == 405
        assert resp.headers["allow"] == "GET"

    def test_garbage_request_line_400(self, series_dir):
        async def scenario(server, app):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            writer.write(b"THIS IS NOT HTTP\r\n\r\n")
            await writer.drain()
            resp = await read_response(reader)
            writer.close()
            return resp

        assert run_with_server(series_dir, scenario).status == 400

    def test_handler_crash_is_500_json(self, series_dir):
        async def broken(server, app):
            original = app.handle_datasets

            def explode(request):
                raise RuntimeError("boom")

            app.handle_datasets = explode
            try:
                return await http_get(server.port, "/datasets")
            finally:
                app.handle_datasets = original

        resp = run_with_server(series_dir, broken)
        assert resp.status == 500
        assert resp.json()["error"] == "internal server error"


class TestBackpressure:
    def test_over_cap_connection_gets_503_retry_after(self, series_dir):
        async def scenario():
            store = SeriesStore(str(series_dir))
            app = ObservatoryApp(store)
            release = asyncio.Event()

            async def slow_handler(request):
                await release.wait()
                return await app(request)

            server = ObservatoryServer(slow_handler, port=0,
                                       max_connections=1)
            await server.start()
            try:
                first = asyncio.ensure_future(
                    http_get(server.port, "/datasets"))
                # wait for the first connection to occupy the only slot
                for _ in range(100):
                    if server.active_connections >= 1:
                        break
                    await asyncio.sleep(0.01)
                overflow = await http_get(server.port, "/datasets")
                release.set()
                ok = await first
                return ok, overflow, server.rejected_total
            finally:
                server.begin_shutdown()
                await server.wait_closed()

        ok, overflow, rejected = asyncio.run(scenario())
        assert ok.status == 200
        assert overflow.status == 503
        assert overflow.headers["retry-after"] == "1"
        assert "capacity" in overflow.json()["error"]
        assert rejected == 1

    def test_capacity_frees_after_close(self, series_dir):
        async def scenario(server, app):
            results = []
            for _ in range(5):  # sequential one-shot connections
                resp = await http_get(server.port, "/datasets")
                results.append(resp.status)
            return results

        statuses = run_with_server(series_dir, scenario,
                                   max_connections=1)
        assert statuses == [200] * 5


class TestKeepAlive:
    def test_two_requests_one_connection(self, series_dir):
        async def scenario(server, app):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            try:
                writer.write(b"GET /datasets HTTP/1.1\r\nHost: t\r\n\r\n")
                await writer.drain()
                first = await read_response(reader)
                writer.write(b"GET /topk/srvip HTTP/1.1\r\nHost: t\r\n\r\n")
                await writer.drain()
                second = await read_response(reader)
                return first, second
            finally:
                writer.close()

        first, second = run_with_server(series_dir, scenario)
        assert first.status == 200
        assert first.headers["connection"] == "keep-alive"
        assert second.status == 200
        assert "top" in second.json()


class TestGracefulShutdown:
    def test_sigterm_completes_inflight_then_closes_listener(
            self, series_dir):
        async def scenario():
            store = SeriesStore(str(series_dir))
            app = ObservatoryApp(store)
            entered = asyncio.Event()

            async def slow_handler(request):
                entered.set()
                await asyncio.sleep(0.3)
                return await app(request)

            server = ObservatoryServer(slow_handler, port=0)
            await server.start()
            serve_task = asyncio.ensure_future(
                server.serve_forever(install_signals=True))
            inflight = asyncio.ensure_future(
                http_get(server.port, "/datasets"))
            await asyncio.wait_for(entered.wait(), 5)
            os.kill(os.getpid(), signal.SIGTERM)  # mid-request
            resp = await asyncio.wait_for(inflight, 5)
            await asyncio.wait_for(serve_task, 5)
            refused = None
            try:
                await http_get(server.port, "/datasets")
            except OSError as exc:
                refused = exc
            return resp, refused

        resp, refused = asyncio.run(scenario())
        # the in-flight response completed with full payload...
        assert resp.status == 200
        assert "srvip" in resp.json()["datasets"]
        # ...and the listener is closed to new connections
        assert refused is not None

    def test_begin_shutdown_is_idempotent(self, series_dir):
        async def scenario(server, app):
            server.begin_shutdown()
            server.begin_shutdown()
            await server.wait_closed()
            return True

        assert run_with_server(series_dir, scenario)


def test_json_payloads_are_sorted_and_terminated(series_dir):
    async def scenario(server, app):
        return await http_get(server.port, "/datasets")

    resp = run_with_server(series_dir, scenario)
    text = resp.body.decode("utf-8")
    assert text.endswith("\n")
    json.loads(text)


class TestTopkWindows:
    def test_matches_store_per_window_ranking(self, series_dir):
        async def scenario(server, app):
            return await http_get(server.port,
                                  "/topk/windows/srvip?n=2&by=hits")

        resp = run_with_server(series_dir, scenario)
        assert resp.status == 200
        payload = resp.json()
        assert payload["dataset"] == "srvip"
        assert payload["n"] == 2
        assert payload["by"] == "hits"
        store = SeriesStore(str(series_dir))
        want = list(store.iter_topk_windows("srvip", n=2))
        assert payload["window_count"] == len(want)
        assert len(payload["windows"]) == len(want)
        for got, (start_ts, top) in zip(payload["windows"], want):
            assert got["start_ts"] == start_ts
            assert [t["key"] for t in got["top"]] == [k for k, _ in top]
            assert [t["rank"] for t in got["top"]] == \
                list(range(1, len(top) + 1))
            for entry, (_, row) in zip(got["top"], top):
                assert entry["value"] == row.get("hits", 0)
                assert entry["row"] == row
        # within every window the ranking is non-increasing
        for got in payload["windows"]:
            values = [t["value"] for t in got["top"]]
            assert values == sorted(values, reverse=True)

    def test_range_narrows_the_stream(self, series_dir):
        async def scenario(server, app):
            full = await http_get(server.port, "/topk/windows/srvip")
            part = await http_get(
                server.port, "/topk/windows/srvip?start=60&end=180")
            return full, part

        full, part = run_with_server(series_dir, scenario)
        all_ts = [w["start_ts"] for w in full.json()["windows"]]
        part_ts = [w["start_ts"] for w in part.json()["windows"]]
        assert part_ts == [ts for ts in all_ts if 60 <= ts < 180]
        assert 0 < len(part_ts) < len(all_ts)

    def test_unknown_dataset_404(self, series_dir):
        async def scenario(server, app):
            return await http_get(server.port, "/topk/windows/nosuch")

        resp = run_with_server(series_dir, scenario)
        assert resp.status == 404
        assert "unknown dataset" in resp.json()["error"]

    def test_etag_covers_the_query_shape(self, series_dir):
        async def scenario(server, app):
            first = await http_get(server.port, "/topk/windows/srvip?n=2")
            etag = first.headers["etag"]
            repeat = await http_get(server.port, "/topk/windows/srvip?n=2",
                                    headers={"If-None-Match": etag})
            other = await http_get(server.port, "/topk/windows/srvip?n=3",
                                   headers={"If-None-Match": etag})
            return first, repeat, other

        first, repeat, other = run_with_server(series_dir, scenario)
        assert first.status == 200
        assert repeat.status == 304
        assert other.status == 200  # a different n is a different entity


class TestKeyPaging:
    def test_pages_reassemble_the_full_key_series(self, series_dir):
        async def scenario(server, app):
            full = (await http_get(
                server.port, "/key/srvip/192.0.2.1")).json()
            pages = []
            cursor = -1  # exclusive: strictly below the first window
            while cursor is not None:
                page = (await http_get(
                    server.port,
                    "/key/srvip/192.0.2.1?limit=2&cursor=%s"
                    % cursor)).json()
                pages.append(page)
                cursor = page["next_cursor"]
            return full, pages

        full, pages = run_with_server(series_dir, scenario)
        assert len(pages) >= 2
        assert all(len(p["series"]) <= 2 for p in pages)
        walked = [point for p in pages for point in p["series"]]
        # oldest-first pages concatenate to exactly the full answer
        assert walked == full["series"]
        assert pages[-1]["next_cursor"] is None
        # the cursor names the last window the client already holds
        assert pages[0]["next_cursor"] == pages[0]["series"][-1][0]

    def test_limit_without_cursor_keeps_newest(self, series_dir):
        async def scenario(server, app):
            full = (await http_get(
                server.port, "/key/srvip/192.0.2.1")).json()
            tail = (await http_get(
                server.port, "/key/srvip/192.0.2.1?limit=2")).json()
            return full, tail

        full, tail = run_with_server(series_dir, scenario)
        # no cursor: /key keeps its original newest-windows semantics
        assert tail["series"] == full["series"][-2:]
        assert tail["next_cursor"] is None

    def test_cursor_past_the_end_is_empty_not_error(self, series_dir):
        async def scenario(server, app):
            return await http_get(
                server.port, "/key/srvip/192.0.2.1?cursor=999999999")

        resp = run_with_server(series_dir, scenario)
        assert resp.status == 200
        payload = resp.json()
        assert payload["series"] == []
        assert payload["next_cursor"] is None

    def test_unknown_key_404_unchanged_by_paging_params(self, series_dir):
        async def scenario(server, app):
            return await http_get(
                server.port,
                "/key/srvip/198.51.100.99?limit=1&cursor=-1")

        resp = run_with_server(series_dir, scenario)
        # the 404 check runs over the full selection, not the page
        assert resp.status == 404
        assert "not found" in resp.json()["error"]
