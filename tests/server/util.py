"""Async test helpers: a tiny HTTP/1.1 client over asyncio streams."""

import asyncio
import gzip
import json


class ClientResponse:
    def __init__(self, status, headers, body):
        self.status = status
        self.headers = headers
        self.body = body

    def json(self):
        body = self.body
        if self.headers.get("content-encoding") == "gzip":
            body = gzip.decompress(body)
        return json.loads(body.decode("utf-8"))


async def read_response(reader):
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    if headers.get("transfer-encoding") == "chunked":
        while True:
            size_line = await reader.readline()
            size = int(size_line.strip(), 16)
            if size == 0:
                await reader.readline()  # trailing CRLF after 0-chunk
                break
            body += await reader.readexactly(size)
            await reader.readexactly(2)  # CRLF after each chunk
    else:
        length = int(headers.get("content-length", 0))
        if length:
            body = await reader.readexactly(length)
    return ClientResponse(status, headers, body)


async def http_get(port, target, headers=None, host="127.0.0.1",
                   method="GET"):
    """One-shot request on a fresh connection (Connection: close)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        lines = ["%s %s HTTP/1.1" % (method, target), "Host: test"]
        for name, value in (headers or {}).items():
            lines.append("%s: %s" % (name, value))
        lines.append("Connection: close")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        await writer.drain()
        return await read_response(reader)
    finally:
        writer.close()
