"""Auth gate, rate limiting, and the /vantage endpoint."""

import asyncio

import pytest

from repro.analysis.vantage import VantageDb, VantageEmitter
from repro.observatory.pipeline import Observatory
from repro.server import build_server
from tests.server.util import http_get
from tests.util import make_txn


@pytest.fixture(scope="module")
def series_dir(tmp_path_factory):
    """A store with srvip plus derived _vantage_* series."""
    directory = tmp_path_factory.mktemp("series-auth")
    db = VantageDb()
    db.add("192.0.2.0/25", 64500, country="US", org="Example US")
    db.add("192.0.2.128/25", 64501, country="DE", org="Example DE")
    obs = Observatory(datasets=[("srvip", 64)], output_dir=str(directory),
                      use_bloom_gate=False, skip_recent_inserts=False,
                      vantage=VantageEmitter(db))
    for i in range(600):
        # 30 distinct servers (< srvip capacity), split across both
        # /25s so each window carries both ASNs / countries
        n = i % 30
        host = n + 1 if n < 15 else n + 114
        obs.ingest(make_txn(ts=i * 0.5,
                            server_ip="192.0.2.%d" % host,
                            answered=i % 7 != 0,
                            rcode=0 if i % 7 != 0 else None))
    obs.finish()
    return directory


def run_with_server(series_dir, scenario, **server_kw):
    async def _main():
        server, app = await build_server(str(series_dir), port=0,
                                         **server_kw)
        try:
            return await scenario(server, app)
        finally:
            server.begin_shutdown()
            await server.wait_closed()

    return asyncio.run(_main())


class TestAuth:
    def test_no_token_configured_leaves_api_open(self, series_dir):
        async def scenario(server, app):
            return await http_get(server.port, "/datasets")

        assert run_with_server(series_dir, scenario).status == 200

    def test_missing_or_wrong_token_is_401(self, series_dir):
        async def scenario(server, app):
            bare = await http_get(server.port, "/datasets")
            wrong = await http_get(
                server.port, "/datasets",
                headers={"Authorization": "Bearer nope"})
            malformed = await http_get(
                server.port, "/datasets",
                headers={"Authorization": "Basic c2VjcmV0"})
            return bare, wrong, malformed

        bare, wrong, malformed = run_with_server(
            series_dir, scenario, auth_tokens=["secret"])
        for resp in (bare, wrong, malformed):
            assert resp.status == 401
            assert "bearer" in resp.headers["www-authenticate"].lower()

    def test_valid_token_passes(self, series_dir):
        async def scenario(server, app):
            ok = await http_get(
                server.port, "/datasets",
                headers={"Authorization": "Bearer secret"})
            other = await http_get(
                server.port, "/platform/health",
                headers={"authorization": "bearer  backup "})
            return ok, other

        ok, other = run_with_server(series_dir, scenario,
                                    auth_tokens=["secret", "backup"])
        assert ok.status == 200
        assert "srvip" in ok.json()["datasets"]
        # scheme is case-insensitive and the token is whitespace-trimmed
        assert other.status == 200

    def test_unauthorized_requests_never_hit_routes(self, series_dir):
        async def scenario(server, app):
            resp = await http_get(server.port, "/series/srvip")
            return resp, app.telemetry.snapshot()

        resp, snap = run_with_server(series_dir, scenario,
                                     auth_tokens=["secret"])
        assert resp.status == 401
        assert dict(snap)["server"]["unauthorized"] == 1


class TestRateLimit:
    def test_burst_past_bucket_gets_429_with_retry_after(self, series_dir):
        async def scenario(server, app):
            out = []
            for _ in range(6):
                out.append(await http_get(server.port, "/datasets"))
            return out

        responses = run_with_server(series_dir, scenario,
                                    rate_limit=0.5, rate_burst=2)
        statuses = [r.status for r in responses]
        assert statuses[:2] == [200, 200]
        assert statuses.count(429) >= 3
        throttled = next(r for r in responses if r.status == 429)
        assert int(throttled.headers["retry-after"]) >= 1

    def test_bucket_refills(self, series_dir):
        async def scenario(server, app):
            first = await http_get(server.port, "/datasets")
            second = await http_get(server.port, "/datasets")
            await asyncio.sleep(0.15)
            third = await http_get(server.port, "/datasets")
            return first, second, third

        first, second, third = run_with_server(
            series_dir, scenario, rate_limit=20, rate_burst=1)
        assert first.status == 200
        assert second.status == 429
        assert third.status == 200

    def test_rate_limit_must_be_positive(self, series_dir):
        with pytest.raises(ValueError):
            run_with_server(series_dir, lambda s, a: None, rate_limit=0)


class TestVantageEndpoint:
    def test_vantage_groups(self, series_dir):
        async def scenario(server, app):
            both = await http_get(server.port, "/vantage")
            asn = await http_get(server.port, "/vantage/asn?n=1")
            return both, asn

        both, asn = run_with_server(series_dir, scenario)
        assert both.status == 200
        payload = both.json()
        assert payload["granularity"] == "minutely"
        assert set(payload["groups"]) == {"asn", "cc"}
        asn_entries = payload["groups"]["asn"]["entries"]
        assert {e["key"] for e in asn_entries} == {"AS64500", "AS64501"}
        for entry in asn_entries:
            row = entry["row"]
            assert 0.0 <= row["reach"] <= 1.0
            assert 0.0 <= row["tta"] <= 1.0
            assert row["hits"] > 0
        cc_entries = payload["groups"]["cc"]["entries"]
        assert {e["key"] for e in cc_entries} == {"US", "DE"}
        # single-group view ranks by the requested column and caps n
        single = asn.json()
        assert set(single["groups"]) == {"asn"}
        top = single["groups"]["asn"]["entries"]
        assert len(top) == 1
        assert top[0]["row"]["hits"] == max(
            e["row"]["hits"] for e in asn_entries)

    def test_vantage_unknown_group_404(self, series_dir):
        async def scenario(server, app):
            return await http_get(server.port, "/vantage/bogus")

        assert run_with_server(series_dir, scenario).status == 404

    def test_vantage_empty_store(self, tmp_path):
        async def scenario(server, app):
            return await http_get(server.port, "/vantage")

        resp = run_with_server(tmp_path, scenario)
        assert resp.status == 200
        groups = resp.json()["groups"]
        assert groups["asn"] == {"window_ts": None, "entries": []}
        assert groups["cc"] == {"window_ts": None, "entries": []}
