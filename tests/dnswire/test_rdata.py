"""Tests for typed RDATA wire codecs."""

import pytest

from repro.dnswire.constants import QTYPE
from repro.dnswire.rdata import (
    AAAA,
    CNAME,
    DS,
    MX,
    NS,
    OPT,
    PTR,
    RRSIG,
    SOA,
    SRV,
    TXT,
    A,
    Rdata,
    rdata_class,
)


def roundtrip(rd):
    wire = rd.to_wire()
    return type(rd).from_wire(wire, 0, len(wire))


class TestAddressRecords:
    def test_a_roundtrip(self):
        assert roundtrip(A("192.0.2.1")) == A("192.0.2.1")

    def test_a_wire_is_4_bytes(self):
        assert A("192.0.2.1").to_wire() == bytes([192, 0, 2, 1])

    def test_a_rejects_bad_length(self):
        with pytest.raises(ValueError):
            A.from_wire(b"\x01\x02\x03", 0, 3)

    def test_a_rejects_bad_address(self):
        with pytest.raises(ValueError):
            A("not-an-ip")

    def test_aaaa_roundtrip(self):
        rd = AAAA("2001:db8::1")
        assert roundtrip(rd) == rd
        assert len(rd.to_wire()) == 16

    def test_aaaa_canonical_form(self):
        assert AAAA("2001:0db8:0000:0000:0000:0000:0000:0001").address == "2001:db8::1"

    def test_aaaa_rejects_bad_length(self):
        with pytest.raises(ValueError):
            AAAA.from_wire(b"\x00" * 8, 0, 8)


class TestNameRecords:
    def test_ns_roundtrip(self):
        assert roundtrip(NS("ns1.example.com")) == NS("ns1.example.com")

    def test_cname_roundtrip(self):
        assert roundtrip(CNAME("target.example.net")) == CNAME("target.example.net")

    def test_ptr_roundtrip(self):
        rd = PTR("host.example.com")
        assert roundtrip(rd) == rd

    def test_name_records_normalize(self):
        assert NS("NS1.Example.COM.").target == "ns1.example.com"


class TestSOA:
    def test_roundtrip(self):
        rd = SOA("ns1.example.com", "hostmaster.example.com",
                 serial=2019040101, refresh=7200, retry=3600,
                 expire=1209600, minimum=300)
        back = roundtrip(rd)
        assert back == rd
        assert back.minimum == 300  # the negative-caching TTL of §5

    def test_defaults(self):
        rd = SOA("ns.example.com", "admin.example.com")
        assert rd.minimum == 3600


class TestMX:
    def test_roundtrip(self):
        rd = MX(10, "mail.example.com")
        back = roundtrip(rd)
        assert back.preference == 10
        assert back.exchange == "mail.example.com"


class TestTXT:
    def test_single_string(self):
        rd = TXT("v=spf1 -all")
        back = roundtrip(rd)
        assert back.strings == [b"v=spf1 -all"]

    def test_multiple_strings(self):
        rd = TXT([b"chunk1", b"chunk2"])
        assert roundtrip(rd).strings == [b"chunk1", b"chunk2"]

    def test_rejects_oversized_string(self):
        with pytest.raises(ValueError):
            TXT(b"x" * 256)

    def test_empty_string_allowed(self):
        rd = TXT([b""])
        assert roundtrip(rd).strings == [b""]


class TestSRV:
    def test_roundtrip(self):
        rd = SRV(0, 5, 5060, "sip.example.com")
        back = roundtrip(rd)
        assert (back.priority, back.weight, back.port) == (0, 5, 5060)
        assert back.target == "sip.example.com"


class TestDS:
    def test_roundtrip(self):
        rd = DS(12345, 8, 2, b"\xab" * 32)
        back = roundtrip(rd)
        assert back == rd


class TestRRSIG:
    def test_roundtrip(self):
        rd = RRSIG(type_covered=int(QTYPE.A), algorithm=13, labels=2,
                   original_ttl=300, expiration=1700000000,
                   inception=1690000000, key_tag=4711,
                   signer="example.com", signature=b"\x01" * 64)
        back = roundtrip(rd)
        assert back == rd
        assert back.signer == "example.com"


class TestOPT:
    def test_roundtrip(self):
        rd = OPT(b"\x00\x0a\x00\x08cookie!!")
        assert roundtrip(rd) == rd


class TestGeneric:
    def test_unknown_type_is_opaque(self):
        cls = rdata_class(65280)
        assert cls is Rdata
        rd = Rdata(b"\xde\xad")
        assert roundtrip(rd).data == b"\xde\xad"

    def test_registry_maps_known_types(self):
        assert rdata_class(QTYPE.A) is A
        assert rdata_class(QTYPE.SOA) is SOA
        assert rdata_class(QTYPE.RRSIG) is RRSIG

    def test_equality_and_repr(self):
        assert A("192.0.2.1") == A("192.0.2.1")
        assert A("192.0.2.1") != A("192.0.2.2")
        assert A("192.0.2.1") != NS("example.com")
        assert "192.0.2.1" in repr(A("192.0.2.1"))
