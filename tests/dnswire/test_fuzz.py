"""Fuzz tests: decoders must fail cleanly on adversarial input.

A passive sensor parses whatever bytes appear on port 53; the wire
decoders must raise controlled ``ValueError`` subclasses -- never
IndexError/KeyError/infinite loops -- on arbitrary garbage.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnswire.message import Message
from repro.dnswire.name import decode_name
from repro.netsim.packet import PacketError, parse_ip_packet
from repro.observatory.transaction import Transaction


@settings(max_examples=200, deadline=None)
@given(st.binary(max_size=512))
def test_message_decoder_never_crashes(data):
    try:
        Message.from_wire(data)
    except ValueError:
        pass  # controlled rejection


@settings(max_examples=200, deadline=None)
@given(st.binary(max_size=128), st.integers(0, 64))
def test_name_decoder_never_crashes(data, offset):
    try:
        decode_name(data, offset)
    except ValueError:
        pass


@settings(max_examples=200, deadline=None)
@given(st.binary(max_size=256))
def test_packet_parser_never_crashes(data):
    try:
        parse_ip_packet(data)
    except PacketError:
        pass


@settings(max_examples=100, deadline=None)
@given(st.binary(min_size=28, max_size=256))
def test_packet_parser_with_valid_ipv4_prefix(data):
    """Force version/IHL plausibility, fuzz the rest."""
    packet = bytes([0x45]) + data[1:]
    try:
        parse_ip_packet(packet)
    except PacketError:
        pass


@settings(max_examples=100, deadline=None)
@given(st.text(max_size=200))
def test_transaction_line_parser_never_crashes(line):
    try:
        Transaction.from_line(line)
    except ValueError:
        pass  # corrupt lines are rejected, not mis-parsed


def test_valid_message_with_trailing_garbage():
    from repro.dnswire.constants import QTYPE

    wire = Message.make_query("example.com", QTYPE.A).to_wire()
    # Trailing bytes after the declared sections are tolerated
    # (sensors see padded captures).
    parsed = Message.from_wire(wire + b"\x00" * 16)
    assert parsed.question[0].qname == "example.com"


def test_deeply_nested_compression_rejected():
    # A chain of backwards pointers below the loop limit must resolve
    # or reject -- never hang.
    wire = bytearray()
    wire += b"\x01a\x00"  # name "a" at offset 0
    offset = len(wire)
    for i in range(100):
        prev = offset - 3 if i else 0
        wire += bytes([0xC0 | (prev >> 8), prev & 0xFF, 0x00])
        offset = len(wire)
    try:
        decode_name(bytes(wire), len(wire) - 3)
    except ValueError:
        pass
