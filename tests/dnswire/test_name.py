"""Tests for domain name handling and the name wire codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnswire.name import (
    NameError_,
    count_labels,
    decode_name,
    encode_name,
    is_subdomain,
    last_labels,
    normalize_name,
    parent_name,
    split_labels,
)


class TestNormalization:
    def test_lowercases_and_strips_dot(self):
        assert normalize_name("WWW.Example.COM.") == "www.example.com"

    def test_root_forms(self):
        assert normalize_name(".") == ""
        assert normalize_name("") == ""

    def test_rejects_too_long(self):
        with pytest.raises(NameError_):
            normalize_name("a" * 300)

    def test_split_labels(self):
        assert split_labels("www.example.com") == ["www", "example", "com"]
        assert split_labels("") == []

    def test_count_labels(self):
        assert count_labels("com") == 1
        assert count_labels("www.example.com") == 3
        assert count_labels(".") == 0

    def test_parent_name(self):
        assert parent_name("www.example.com") == "example.com"
        assert parent_name("com") == ""
        assert parent_name("") == ""

    def test_is_subdomain(self):
        assert is_subdomain("www.example.com", "example.com")
        assert is_subdomain("example.com", "example.com")
        assert is_subdomain("example.com", "com")
        assert is_subdomain("anything", "")
        assert not is_subdomain("example.com", "example.org")
        assert not is_subdomain("badexample.com", "example.com")
        assert not is_subdomain("com", "example.com")

    def test_last_labels(self):
        assert last_labels("www.bbc.co.uk", 2) == "co.uk"
        assert last_labels("www.bbc.co.uk", 3) == "bbc.co.uk"
        assert last_labels("uk", 3) == "uk"
        assert last_labels("", 2) == ""


class TestWireCodec:
    def test_simple_roundtrip(self):
        wire = encode_name("www.example.com")
        name, end = decode_name(wire, 0)
        assert name == "www.example.com"
        assert end == len(wire)

    def test_root_name(self):
        wire = encode_name("")
        assert wire == b"\x00"
        name, end = decode_name(wire, 0)
        assert name == ""
        assert end == 1

    def test_encoding_is_case_insensitive(self):
        assert encode_name("WWW.EXAMPLE.COM") == encode_name("www.example.com")

    def test_compression_pointer_roundtrip(self):
        compression = {}
        first = encode_name("example.com", compression, 0)
        second = encode_name("www.example.com", compression, len(first))
        # The second name should reuse "example.com" via a pointer:
        # 1+3 ("www") + 2 (pointer) = 6 bytes.
        assert len(second) == 6
        wire = first + second
        name1, end1 = decode_name(wire, 0)
        name2, _ = decode_name(wire, end1)
        assert name1 == "example.com"
        assert name2 == "www.example.com"

    def test_full_pointer_when_name_already_seen(self):
        compression = {}
        first = encode_name("example.com", compression, 0)
        again = encode_name("example.com", compression, len(first))
        assert len(again) == 2  # pure pointer

    def test_rejects_oversized_label(self):
        with pytest.raises(NameError_):
            encode_name("a" * 64 + ".com")

    def test_rejects_truncated_wire(self):
        wire = encode_name("www.example.com")
        with pytest.raises(NameError_):
            decode_name(wire[:-3], 0)

    def test_rejects_forward_pointer(self):
        # Pointer at offset 0 pointing to offset 4 (>= its own position).
        wire = bytes([0xC0, 0x04, 0, 0, 0x00])
        with pytest.raises(NameError_):
            decode_name(wire, 0)

    def test_rejects_pointer_loop(self):
        # Two pointers pointing at each other.
        wire = bytes([0xC0, 0x02, 0xC0, 0x00])
        with pytest.raises(NameError_):
            decode_name(wire, 2)

    def test_rejects_reserved_label_type(self):
        with pytest.raises(NameError_):
            decode_name(bytes([0x80, 0x00]), 0)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.text(
                alphabet="abcdefghijklmnopqrstuvwxyz0123456789-",
                min_size=1,
                max_size=20,
            ).filter(lambda s: not s.startswith("-")),
            min_size=0,
            max_size=6,
        )
    )
    def test_roundtrip_property(self, labels):
        name = ".".join(labels)
        if len(name) > 253:
            return
        wire = encode_name(name)
        decoded, end = decode_name(wire, 0)
        assert decoded == name
        assert end == len(wire)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.sampled_from(
        ["com", "example.com", "www.example.com", "mail.example.com",
         "example.org", "a.b.c.d.e"]), min_size=1, max_size=8))
    def test_compressed_stream_roundtrip(self, names):
        """Many names encoded into one buffer with shared compression
        must all decode back correctly."""
        compression = {}
        wire = bytearray()
        offsets = []
        for name in names:
            offsets.append(len(wire))
            wire += encode_name(name, compression, len(wire))
        for name, offset in zip(names, offsets):
            decoded, _ = decode_name(bytes(wire), offset)
            assert decoded == name
