"""Tests for EDNS0 OPT handling."""

import pytest

from repro.dnswire.constants import QTYPE
from repro.dnswire.edns import dnssec_ok, edns_info, make_opt, parse_opt
from repro.dnswire.message import Message, ResourceRecord
from repro.dnswire.rdata import A


def test_make_and_parse_opt():
    opt = make_opt(payload_size=4096, dnssec_ok=True, version=0)
    info = parse_opt(opt)
    assert info.payload_size == 4096
    assert info.dnssec_ok is True
    assert info.version == 0
    assert info.ext_rcode == 0


def test_do_flag_off_by_default():
    info = parse_opt(make_opt())
    assert info.dnssec_ok is False
    assert info.payload_size == 1232


def test_ext_rcode_packing():
    info = parse_opt(make_opt(ext_rcode=0x16))
    assert info.ext_rcode == 0x16


def test_parse_opt_none_passthrough():
    assert parse_opt(None) is None


def test_parse_opt_rejects_non_opt():
    rr = ResourceRecord("example.com", QTYPE.A, 300, A("192.0.2.1"))
    with pytest.raises(ValueError):
        parse_opt(rr)


def test_edns_info_from_message():
    msg = Message.make_query("example.com", QTYPE.A)
    assert edns_info(msg) is None
    assert dnssec_ok(msg) is False
    msg.additional.append(make_opt(dnssec_ok=True))
    assert edns_info(msg).dnssec_ok
    assert dnssec_ok(msg) is True


def test_opt_name_is_root():
    assert make_opt().name == ""


def test_repr():
    assert "payload=1232" in repr(parse_opt(make_opt()))
