"""Tests for the DNS message model and wire codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnswire.constants import FLAGS, QTYPE, RCODE
from repro.dnswire.edns import make_opt
from repro.dnswire.message import Message, Question, ResourceRecord
from repro.dnswire.rdata import AAAA, CNAME, NS, RRSIG, SOA, A


def make_answer_message():
    query = Message.make_query("www.example.com", QTYPE.A, msg_id=4242)
    resp = Message.make_response(query, authoritative=True)
    resp.answer.append(
        ResourceRecord("www.example.com", QTYPE.A, 300, A("192.0.2.10"))
    )
    resp.authority.append(
        ResourceRecord("example.com", QTYPE.NS, 86400, NS("ns1.example.com"))
    )
    resp.additional.append(
        ResourceRecord("ns1.example.com", QTYPE.A, 86400, A("192.0.2.53"))
    )
    return resp


class TestFlags:
    def test_query_defaults(self):
        q = Message.make_query("example.com", QTYPE.A)
        assert not q.is_response
        assert not q.authoritative
        assert q.rcode == RCODE.NOERROR

    def test_recursion_desired(self):
        q = Message.make_query("example.com", QTYPE.A, recursion_desired=True)
        assert q.flags & FLAGS.RD

    def test_response_echoes_query(self):
        q = Message.make_query("example.com", QTYPE.A, msg_id=7)
        r = Message.make_response(q, rcode=RCODE.NXDOMAIN)
        assert r.msg_id == 7
        assert r.is_response
        assert r.rcode == RCODE.NXDOMAIN
        assert r.question == q.question

    def test_aa_flag(self):
        q = Message.make_query("example.com", QTYPE.A)
        r = Message.make_response(q, authoritative=True)
        assert r.authoritative

    def test_rcode_setter(self):
        m = Message()
        m.rcode = RCODE.SERVFAIL
        assert m.rcode == RCODE.SERVFAIL
        m.rcode = RCODE.NOERROR
        assert m.rcode == RCODE.NOERROR

    def test_set_flag(self):
        m = Message()
        m.set_flag(FLAGS.TC)
        assert m.truncated
        m.set_flag(FLAGS.TC, on=False)
        assert not m.truncated


class TestWireRoundtrip:
    def test_query_roundtrip(self):
        q = Message.make_query("www.example.com", QTYPE.AAAA, msg_id=99,
                               recursion_desired=True)
        back = Message.from_wire(q.to_wire())
        assert back.msg_id == 99
        assert back.question == [Question("www.example.com", QTYPE.AAAA)]
        assert back.flags == q.flags

    def test_full_response_roundtrip(self):
        resp = make_answer_message()
        back = Message.from_wire(resp.to_wire())
        assert back.msg_id == resp.msg_id
        assert back.answer == resp.answer
        assert back.authority == resp.authority
        assert back.additional == resp.additional

    def test_compression_shrinks_message(self):
        resp = make_answer_message()
        wire = resp.to_wire()
        # Uncompressed encoding of the repeated names would be much
        # larger; check the pointer opcodes are present.
        assert any(b & 0xC0 == 0xC0 for b in wire)
        assert len(wire) < 120

    def test_soa_negative_response_roundtrip(self):
        q = Message.make_query("nonexistent.example.com", QTYPE.A)
        r = Message.make_response(q, rcode=RCODE.NXDOMAIN, authoritative=True)
        r.authority.append(ResourceRecord(
            "example.com", QTYPE.SOA, 300,
            SOA("ns1.example.com", "hostmaster.example.com", minimum=60),
        ))
        back = Message.from_wire(r.to_wire())
        assert back.rcode == RCODE.NXDOMAIN
        soa = list(back.records("authority", QTYPE.SOA))[0]
        assert soa.rdata.minimum == 60

    def test_cname_chain_roundtrip(self):
        q = Message.make_query("www.alias.example", QTYPE.A)
        r = Message.make_response(q)
        r.answer.append(ResourceRecord(
            "www.alias.example", QTYPE.CNAME, 300, CNAME("real.example")))
        r.answer.append(ResourceRecord(
            "real.example", QTYPE.A, 60, A("198.51.100.7")))
        back = Message.from_wire(r.to_wire())
        assert len(back.answer) == 2
        assert back.answer[0].rdata.target == "real.example"

    def test_rejects_truncated_header(self):
        with pytest.raises(ValueError):
            Message.from_wire(b"\x00\x01\x02")

    def test_rejects_truncated_rdata(self):
        resp = make_answer_message()
        wire = resp.to_wire()
        with pytest.raises(ValueError):
            Message.from_wire(wire[:-2])

    def test_len_is_wire_size(self):
        resp = make_answer_message()
        assert len(resp) == len(resp.to_wire())


class TestSectionHelpers:
    def test_records_filter(self):
        resp = make_answer_message()
        assert len(list(resp.records("answer", QTYPE.A))) == 1
        assert len(list(resp.records("answer", QTYPE.AAAA))) == 0
        assert len(list(resp.records("authority"))) == 1

    def test_opt_record_detection(self):
        resp = make_answer_message()
        assert resp.opt_record() is None
        resp.additional.append(make_opt(dnssec_ok=True))
        assert resp.opt_record() is not None

    def test_has_rrsig(self):
        resp = make_answer_message()
        assert not resp.has_rrsig()
        resp.answer.append(ResourceRecord(
            "www.example.com", QTYPE.RRSIG, 300,
            RRSIG(type_covered=int(QTYPE.A), signer="example.com")))
        assert resp.has_rrsig()

    def test_opt_survives_wire_roundtrip(self):
        resp = make_answer_message()
        resp.additional.append(make_opt(payload_size=4096, dnssec_ok=True))
        back = Message.from_wire(resp.to_wire())
        opt = back.opt_record()
        assert opt is not None
        assert opt.rclass == 4096


@settings(max_examples=40, deadline=None)
@given(
    st.integers(0, 0xFFFF),
    st.sampled_from([QTYPE.A, QTYPE.AAAA, QTYPE.NS, QTYPE.TXT, QTYPE.MX]),
    st.sampled_from(["example.com", "www.example.com", "a.b.c.example.org"]),
    st.sampled_from(list(RCODE)),
)
def test_header_roundtrip_property(msg_id, qtype, qname, rcode):
    q = Message.make_query(qname, qtype, msg_id=msg_id)
    r = Message.make_response(q, rcode=rcode)
    back = Message.from_wire(r.to_wire())
    assert back.msg_id == msg_id
    assert back.rcode == rcode
    assert back.question[0].qname == qname
    assert back.question[0].qtype == qtype


class TestMemoryviewDecode:
    """from_wire decodes through a memoryview (zero-slice parsing);
    the materialized message must be indistinguishable from a bytes
    decode, and must not retain views into the packet buffer."""

    def test_memoryview_input_equals_bytes_input(self):
        resp = make_answer_message()
        wire = resp.to_wire()
        from_bytes = Message.from_wire(wire)
        from_view = Message.from_wire(memoryview(wire))
        assert from_view.msg_id == from_bytes.msg_id
        assert from_view.question == from_bytes.question
        assert from_view.answer == from_bytes.answer
        assert from_view.authority == from_bytes.authority
        assert from_view.additional == from_bytes.additional

    def test_decoded_message_outlives_the_buffer(self):
        resp = make_answer_message()
        wire = bytearray(resp.to_wire())
        back = Message.from_wire(wire)
        wire[:] = b"\x00" * len(wire)  # scribble over the packet buffer
        assert back.question[0].qname == "www.example.com"
        for rr in back.answer:
            assert rr.rdata is not None
        assert back == back  # no lazy views left to blow up on access

    def test_address_rdata_from_view(self):
        q = Message.make_query("v6.example", QTYPE.AAAA)
        r = Message.make_response(q)
        r.answer.append(ResourceRecord(
            "v6.example", QTYPE.AAAA, 60, AAAA("2001:db8::7")))
        r.answer.append(ResourceRecord(
            "v6.example", QTYPE.A, 60, A("198.51.100.7")))
        back = Message.from_wire(memoryview(r.to_wire()))
        assert back.answer[0].rdata.address == "2001:db8::7"
        assert back.answer[1].rdata.address == "198.51.100.7"
