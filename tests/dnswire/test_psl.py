"""Tests for the Public Suffix List engine."""

import pytest

from repro.dnswire.psl import PublicSuffixList, default_psl, sld, tld


@pytest.fixture(scope="module")
def psl():
    return PublicSuffixList.builtin()


class TestEffectiveTld:
    def test_plain_gtld(self, psl):
        assert psl.effective_tld("example.com") == "com"

    def test_multi_label_suffix(self, psl):
        assert psl.effective_tld("bbc.co.uk") == "co.uk"
        assert psl.effective_tld("www.bbc.co.uk") == "co.uk"

    def test_paper_whitelist_cases(self, psl):
        # Table 3 discussion: .uk hosts .co.uk, .il hosts .org.il,
        # .me hosts .net.me.
        assert psl.effective_tld("something.org.il") == "org.il"
        assert psl.effective_tld("something.net.me") == "net.me"

    def test_name_that_is_a_suffix(self, psl):
        assert psl.effective_tld("co.uk") == "co.uk"
        assert psl.effective_tld("com") == "com"

    def test_unknown_tld_default_rule(self, psl):
        assert psl.effective_tld("example.zz") == "zz"

    def test_wildcard_rule(self, psl):
        # *.ck: any direct child of ck is itself a public suffix.
        assert psl.effective_tld("foo.example.ck") == "example.ck"

    def test_exception_rule(self, psl):
        # !www.ck: www.ck is registrable despite the wildcard.
        assert psl.effective_tld("www.ck") == "ck"
        assert psl.effective_sld("www.ck") == "www.ck"

    def test_root_returns_none(self, psl):
        assert psl.effective_tld("") is None


class TestEffectiveSld:
    def test_simple(self, psl):
        assert psl.effective_sld("www.example.com") == "example.com"
        assert psl.effective_sld("example.com") == "example.com"

    def test_multi_label_suffix(self, psl):
        assert psl.effective_sld("www.bbc.co.uk") == "bbc.co.uk"

    def test_deep_name(self, psl):
        assert psl.effective_sld("a.b.c.d.example.org") == "example.org"

    def test_suffix_itself_has_no_sld(self, psl):
        assert psl.effective_sld("co.uk") is None
        assert psl.effective_sld("com") is None

    def test_unknown_tld(self, psl):
        assert psl.effective_sld("foo.bar.zz") == "bar.zz"


class TestMisc:
    def test_is_public_suffix(self, psl):
        assert psl.is_public_suffix("co.uk")
        assert psl.is_public_suffix("com")
        assert not psl.is_public_suffix("example.com")
        assert not psl.is_public_suffix("")

    def test_len_counts_rules(self, psl):
        assert len(psl) > 50

    def test_comments_and_blanks_ignored(self):
        custom = PublicSuffixList(["// comment", "", "com  ", "co.uk"])
        assert len(custom) == 2

    def test_from_lines(self):
        custom = PublicSuffixList.from_lines(["dev", "pages.dev"])
        assert custom.effective_tld("foo.pages.dev") == "pages.dev"

    def test_default_psl_is_cached(self):
        assert default_psl() is default_psl()

    def test_plain_tld_sld(self):
        assert tld("www.bbc.co.uk") == "uk"
        assert sld("www.bbc.co.uk") == "co.uk"
        assert tld("") is None
        assert sld("com") is None

    def test_case_insensitive(self, psl):
        assert psl.effective_sld("WWW.Example.COM") == "example.com"
