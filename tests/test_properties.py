"""Cross-module property-based tests: system-level invariants."""

import os
import random
import threading

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.dnswire.constants import QTYPE, RCODE
from repro.observatory.aggregate import aggregate_series
from repro.observatory.pipeline import Observatory
from repro.observatory.store import SeriesStore
from repro.observatory.transaction import Transaction
from repro.observatory.tsv import (
    TimeSeriesData, escape_key, filename_for, list_series, read_series,
    read_tsv, unescape_key, write_tsv)
from tests.util import make_nxdomain, make_txn

# -- strategies ---------------------------------------------------------

qtypes = st.sampled_from([QTYPE.A, QTYPE.AAAA, QTYPE.NS, QTYPE.MX,
                          QTYPE.TXT, QTYPE.PTR])
rcodes = st.sampled_from(list(RCODE))
names = st.sampled_from([
    "example.com", "www.example.com", "a.b.c.example.org",
    "bbc.co.uk", "x.ck", ".",
])


@st.composite
def transactions(draw):
    answered = draw(st.booleans())
    answer_count = draw(st.integers(0, 3))
    rcode = draw(rcodes) if answered else None
    if rcode != RCODE.NOERROR:
        answer_count = 0
    return make_txn(
        ts=draw(st.floats(0, 1000, allow_nan=False)),
        qname=draw(names),
        qtype=draw(qtypes),
        rcode=rcode,
        answered=answered,
        aa=draw(st.booleans()),
        answer_count=answer_count,
        answer_ttls=tuple([300] * answer_count),
        answer_ips=tuple("198.51.100.%d" % i for i in range(answer_count)),
        authority_ns_count=draw(st.integers(0, 2)),
        delay_ms=draw(st.floats(0.1, 500, allow_nan=False)),
        observed_ttl=draw(st.integers(30, 255)),
        response_size=draw(st.integers(12, 1400)),
    )


# -- properties ---------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(st.lists(transactions(), min_size=1, max_size=60))
def test_transaction_line_roundtrip_property(txns):
    """Every transaction survives the §2.1 line serialization (floats
    up to the format's fixed decimal precision)."""
    for txn in txns:
        back = Transaction.from_line(txn.to_line())
        for attr in Transaction.__slots__:
            a, b = getattr(back, attr), getattr(txn, attr)
            if attr == "ts":
                assert abs(a - b) < 1e-6, attr
            elif attr == "delay_ms":
                assert abs(a - b) < 1e-3, attr
            else:
                assert a == b, attr


@settings(max_examples=20, deadline=None)
@given(st.lists(transactions(), min_size=1, max_size=80))
def test_observatory_conserves_transactions(txns):
    """hits summed over dumped rows never exceed ingested transactions,
    and equals them when the top-k cache is big enough."""
    txns = sorted(txns, key=lambda t: t.ts)
    obs = Observatory(datasets=[("qname", 1000)], use_bloom_gate=False,
                      skip_recent_inserts=False)
    obs.consume(txns)
    obs.finish()
    dumped = sum(row["hits"] for d in obs.dumps["qname"]
                 for _, row in d.rows)
    assert dumped == len(txns)


@settings(max_examples=20, deadline=None)
@given(st.lists(transactions(), min_size=1, max_size=80),
       st.integers(1, 4))
def test_capture_ratio_monotone_in_k(txns, small_k):
    """A bigger top-k cache never captures less traffic."""
    txns = sorted(txns, key=lambda t: t.ts)
    small = Observatory(datasets=[("qname", small_k)],
                        use_bloom_gate=False)
    big = Observatory(datasets=[("qname", 1000)], use_bloom_gate=False)
    small.consume(txns)
    big.consume(txns)
    assert big.capture_ratios()["qname"] >= \
        small.capture_ratios()["qname"] - 1e-9


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(
    st.sampled_from(["k1", "k2", "k3"]),
    st.integers(0, 100),
    st.floats(0, 50, allow_nan=False),
), min_size=1, max_size=30))
def test_aggregation_preserves_counter_mass(entries):
    """Summed counter mass is invariant under time aggregation when
    expected_points equals the file count."""
    series_list = []
    for i, (key, hits, delay) in enumerate(entries):
        series_list.append(TimeSeriesData(
            "x", "minutely", i * 60, columns=["hits", "delay_q50"],
            rows=[(key, {"hits": hits, "delay_q50": delay})]))
    agg = aggregate_series(series_list, "x", "decaminutely", 0,
                           expected_points=len(series_list))
    total_in = sum(h for _, h, _ in entries)
    total_out = sum(row["hits"] for _, row in agg.rows) * len(series_list)
    assert abs(total_out - total_in) < 1e-6


@settings(max_examples=15, deadline=None)
@given(st.lists(st.tuples(
    st.text(alphabet="abc123.", min_size=1, max_size=20).map(
        lambda s: s.strip(".") or "k"),
    st.integers(0, 10**6),
), min_size=1, max_size=20, unique_by=lambda kv: kv[0]),
    st.integers(0, 10**6))
def test_tsv_roundtrip_property(rows, start):
    """Arbitrary keys and integer values survive the TSV format."""
    import tempfile

    data = TimeSeriesData("prop", "minutely", start, columns=["hits"],
                          rows=[(k, {"hits": v}) for k, v in rows])
    with tempfile.TemporaryDirectory() as d:
        back = read_tsv(write_tsv(d, data))
    assert back.start_ts == start
    assert back.rows == [(k, {"hits": v}) for k, v in rows]


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**31))
def test_simulation_determinism_property(seed):
    """Same seed -> identical stream prefix; independent of process
    hash randomization."""
    from repro.simulation import Scenario, SieChannel

    def prefix(n=40):
        scenario = Scenario.tiny(seed=seed, duration=30.0, client_qps=20.0)
        stream = SieChannel(scenario).run()
        return [next(stream).to_line() for _ in range(n)]

    assert prefix() == prefix()


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(transactions(), st.booleans()),
                min_size=1, max_size=80))
def test_featureset_merge_matches_single_pass(tagged):
    """FeatureSet.merge over an arbitrarily split stream produces the
    same feature row as one pass over the concatenation: counters and
    quantiles exactly, HLL cardinalities exactly too (register-max
    merging is byte-identical when hash seeds are fixed)."""
    from repro.observatory.features import FeatureSet

    left = FeatureSet()
    right = FeatureSet()
    whole = FeatureSet()
    for txn, side in tagged:
        (left if side else right).update(txn)
        whole.update(txn)
    left.merge(right)
    assert left.as_row() == whole.as_row()


@settings(max_examples=10, deadline=None)
@given(st.lists(transactions(), min_size=1, max_size=120),
       st.integers(0, 2**32 - 1))
def test_split_streams_merge_like_one_observatory(txns, salt):
    """Partitioning a stream across independent trackers and merging
    their Space-Saving caches agrees with one tracker over the whole
    stream (uncapped, so the merge must be exact)."""
    import zlib

    from repro.observatory.keys import make_dataset
    from repro.observatory.tracker import TopKTracker

    txns = sorted(txns, key=lambda t: t.ts)
    spec = make_dataset("qname", 1000)
    parts = [TopKTracker(make_dataset("qname", 1000), use_bloom_gate=False)
             for _ in range(2)]
    whole = TopKTracker(spec, use_bloom_gate=False)
    for txn in txns:
        shard = zlib.crc32(("%d|%s" % (salt, txn.qname)).encode()) % 2
        parts[shard].observe(txn)
        whole.observe(txn)
    merged = parts[0].cache
    merged.merge(parts[1].cache)
    assert {e.key for e in merged} == {e.key for e in whole.cache}
    now = txns[-1].ts
    for entry in whole.cache:
        assert merged.rate(entry.key, now) == \
            pytest.approx(whole.cache.rate(entry.key, now), rel=1e-9)
        assert merged.get(entry.key).hits == entry.hits


# -- randomized differential harness ------------------------------------
#
# The strongest correctness statement the system can make is that its
# independently-built paths agree: the sharded multiprocess pipeline
# against the single-process one on the same randomized stream, and the
# indexed store's query answers against a raw directory scan on the
# same tree.  Each seed below drives the simulator's RNG, so every
# seed is a different workload.

DIFF_SEEDS = [7, 1017, 2019, 31337, 424242]


def _tsv_tree(directory):
    """``{filename: data lines}`` for every series file in *directory*.

    ``_platform`` files and ``#stats`` lines are each mode's own vital
    signs (telemetry rows and flush accounting legitimately differ
    between one process and two), so the differential excludes them --
    the same exclusion the CI smoke comparison uses.
    """
    out = {}
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".tsv") or name.startswith("_platform."):
            continue
        with open(os.path.join(directory, name), encoding="utf-8") as fh:
            out[name] = [line for line in fh
                         if not line.startswith("#stats")]
    return out


@pytest.mark.parametrize("transport", ["binary", "ring"])
@pytest.mark.parametrize("seed", DIFF_SEEDS)
def test_sharded_replay_matches_single_process(seed, transport, tmp_path):
    """simulate | replay == simulate | replay --shards 2 --transport
    {binary,ring} --telemetry: same filenames, same rows, for five
    random workloads, through the real CLI."""
    from repro.cli import main as cli_main

    stream = tmp_path / "stream.txt"
    assert cli_main(["simulate", "--preset", "tiny", "--seed", str(seed),
                     "--duration", "90", "--qps", "15",
                     "-o", str(stream)]) == 0
    single = tmp_path / "single"
    sharded = tmp_path / "sharded"
    assert cli_main(["replay", str(stream), str(single)]) == 0
    assert cli_main(["replay", str(stream), str(sharded),
                     "--shards", "2", "--transport", transport,
                     "--telemetry"]) == 0
    ours, theirs = _tsv_tree(str(single)), _tsv_tree(str(sharded))
    assert sorted(ours) == sorted(theirs)
    for name in ours:
        assert ours[name] == theirs[name], "row mismatch in %s" % name
    # the sharded run's telemetry really was on
    assert any(name.startswith("_platform.")
               for name in os.listdir(str(sharded)))


@pytest.fixture(scope="module")
def differential_tree(tmp_path_factory):
    """One replayed TSV tree shared by the store-vs-raw differentials."""
    directory = tmp_path_factory.mktemp("difftree")
    obs = Observatory(datasets=[("qname", 256), ("srvip", 64)],
                      output_dir=str(directory), use_bloom_gate=False,
                      skip_recent_inserts=False)
    for i in range(900):
        obs.ingest(make_txn(ts=i * 0.4,
                            qname="host%02d.example.com" % (i % 40),
                            server_ip="192.0.2.%d" % (1 + i % 7)))
    obs.finish()
    return str(directory)


@pytest.mark.parametrize("seed", DIFF_SEEDS)
def test_store_answers_match_raw_read_series(differential_tree, seed):
    """The bisected, manifest-indexed, LRU-cached store answers every
    randomized range query exactly like a raw directory scan."""
    rng = random.Random(seed)
    store = SeriesStore(differential_tree)

    def snapshot(series):
        return [(d.start_ts, d.rows, d.stats) for d in series]

    for _ in range(12):
        dataset = rng.choice(["qname", "srvip"])
        lo = rng.choice([None, rng.uniform(-120, 420)])
        hi = rng.choice([None, rng.uniform(-60, 480)])
        if lo is not None and hi is not None and hi <= lo:
            lo, hi = hi, lo
        raw = read_series(differential_tree, dataset, "minutely", lo, hi)
        assert snapshot(store.read(dataset, "minutely", lo, hi)) == \
            snapshot(raw)
        # the streaming iterator walks the same windows in the same
        # order as the materializing read
        streamed = store.iter_range(dataset, "minutely", lo, hi)
        assert snapshot(streamed) == snapshot(raw)


# -- TSV fuzzing: hostile keys + write atomicity ------------------------

#: characters a qname dataset can legally smuggle into the key column:
#: the escaped delimiters, the escape character itself, non-ASCII,
#: controls, and enough plain text to form empty/blank-adjacent fields
_HOSTILE_ALPHABET = list("ab\\\t\n\r# .") + ["é", "☃", "名", "\x1f"]


@settings(max_examples=60, deadline=None)
@given(st.text(alphabet=st.sampled_from(_HOSTILE_ALPHABET), max_size=20))
def test_key_escaping_roundtrips_and_stays_single_line(key):
    escaped = escape_key(key)
    assert unescape_key(escaped) == key
    # the whole point: no raw delimiter survives into the file
    assert "\t" not in escaped
    assert "\n" not in escaped
    assert "\r" not in escaped


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(
    st.text(alphabet=st.sampled_from(_HOSTILE_ALPHABET), max_size=12),
    st.integers(0, 10**9),
), min_size=0, max_size=12),
    st.integers(0, 10**6))
def test_tsv_hostile_key_roundtrip(rows, start):
    """Tabs, newlines, backslashes, non-ASCII and empty keys all
    survive write_tsv -> read_tsv (``#stats`` is the format's one
    reserved key -- the stats trailer -- so it is excluded)."""
    import tempfile

    assume(all(key != "#stats" for key, _ in rows))
    data = TimeSeriesData("fuzz", "minutely", start, columns=["hits"],
                          rows=[(k, {"hits": v}) for k, v in rows],
                          stats={"seen": len(rows), "kept": len(rows)})
    with tempfile.TemporaryDirectory() as d:
        back = read_tsv(write_tsv(d, data))
    assert back.start_ts == start
    assert back.rows == [(k, {"hits": v}) for k, v in rows]
    assert back.stats == {"seen": len(rows), "kept": len(rows)}


def test_concurrent_reader_never_sees_a_torn_window(tmp_path):
    """write_tsv's replace-onto-final-name contract, observed from the
    outside: a reader hammering the canonical path while a writer loop
    rewrites it sees either no file or one complete, internally
    consistent version -- never a header from one write and rows from
    another, and never a ``.tmp`` sibling via list_series."""
    directory = str(tmp_path)
    path = os.path.join(directory, filename_for("race", "minutely", 0))
    done = threading.Event()

    def writer():
        try:
            for version in range(150):
                write_tsv(directory, TimeSeriesData(
                    "race", "minutely", 0, columns=["hits"],
                    rows=[("k%02d" % i, {"hits": version})
                          for i in range(80)],
                    stats={"seen": version, "kept": version}))
        finally:
            done.set()

    thread = threading.Thread(target=writer)
    thread.start()
    observed = set()
    try:
        while not done.is_set() or not observed:
            listed = list_series(directory, "race")
            assert len(listed) <= 1  # .tmp siblings are invisible
            try:
                data = read_tsv(path)
            except FileNotFoundError:
                continue
            versions = {row["hits"] for _, row in data.rows}
            versions.add(data.stats["seen"])
            assert len(versions) == 1, "torn window: %s" % versions
            assert len(data.rows) == 80
            observed.add(versions.pop())
    finally:
        thread.join()
    assert observed  # the reader really saw completed writes
    assert [n for n in os.listdir(directory) if n.endswith(".tsv")] == \
        [os.path.basename(path)]


# -- storage engine v2 differential: segments vs text -------------------
#
# The columnar sidecars must be invisible at the query surface: a
# segment-backed store and a TSV-only store over the same tree answer
# every query identically, down to the bytes HTTP clients receive.

@pytest.fixture(scope="module")
def segment_tree(tmp_path_factory):
    """A replayed tree where every window carries a fresh sidecar."""
    from repro.observatory.aggregate import TimeAggregator

    directory = tmp_path_factory.mktemp("segtree")
    obs = Observatory(datasets=[("qname", 256), ("srvip", 64)],
                      output_dir=str(directory), use_bloom_gate=False,
                      skip_recent_inserts=False)
    for i in range(900):
        obs.ingest(make_txn(ts=i * 0.4,
                            qname="host%02d.example.com" % (i % 40),
                            server_ip="192.0.2.%d" % (1 + i % 7)))
    obs.finish()
    report = TimeAggregator(str(directory)).compact()
    assert report["built"] and not report["fresh"]
    return str(directory)


@pytest.mark.parametrize("seed", DIFF_SEEDS)
def test_segment_store_matches_text_parse(segment_tree, seed):
    """Randomized ranges: read/accumulate/topk from segments equal the
    same queries re-parsing the TSV text, exactly."""
    rng = random.Random(seed)
    seg = SeriesStore(segment_tree, cache_windows=0, manifest=False)
    tsv = SeriesStore(segment_tree, cache_windows=0, manifest=False,
                      use_segments=False)

    def snapshot(series):
        return [(d.start_ts, d.rows, d.stats) for d in series]

    for _ in range(8):
        dataset = rng.choice(["qname", "srvip"])
        lo = rng.choice([None, rng.uniform(-120, 420)])
        hi = rng.choice([None, rng.uniform(-60, 480)])
        if lo is not None and hi is not None and hi <= lo:
            lo, hi = hi, lo
        assert snapshot(seg.read(dataset, "minutely", lo, hi)) == \
            snapshot(tsv.read(dataset, "minutely", lo, hi))
        assert seg.accumulate(dataset, "minutely", lo, hi) == \
            tsv.accumulate(dataset, "minutely", lo, hi)
        assert seg.topk(dataset, n=5, start_ts=lo, end_ts=hi) == \
            tsv.topk(dataset, n=5, start_ts=lo, end_ts=hi)
    # the fast path really ran: all cold reads came from sidecars
    assert seg.segment_reads > 0 and seg.parses == 0
    assert tsv.parses > 0 and tsv.segment_reads == 0


def test_segment_backed_http_responses_byte_identical(segment_tree):
    """/series and /topk bodies (and ETags) from a segment-backed
    server equal a TSV-only server's, byte for byte."""
    import asyncio

    from repro.server import build_server
    from tests.server.util import http_get

    targets = (
        "/series/qname",
        "/series/srvip?start=60&end=300",
        "/topk/qname?n=5",
        "/topk/srvip?n=3&by=ok",
    )

    def collect(use_segments):
        async def _main():
            store = SeriesStore(segment_tree, cache_windows=0,
                                manifest=False,
                                use_segments=use_segments)
            server, app = await build_server(segment_tree, port=0,
                                             store=store)
            try:
                out = []
                for target in targets:
                    resp = await http_get(server.port, target)
                    out.append((target, resp.status,
                                resp.headers.get("etag"), resp.body))
                return out, store
            finally:
                server.begin_shutdown()
                await server.wait_closed()

        return asyncio.run(_main())

    seg_out, seg_store = collect(True)
    tsv_out, tsv_store = collect(False)
    assert seg_out == tsv_out
    assert seg_store.segment_reads > 0 and seg_store.parses == 0
    assert tsv_store.parses > 0


# -- detection subsystem differentials ----------------------------------
#
# The detectors make a stronger promise than the tracker datasets: the
# accumulator/scorer split means the ``_detector`` series -- flush
# accounting included -- is bit-identical between a sharded run and a
# single process.  So unlike _tsv_tree above, this comparison keeps
# the ``#stats`` lines.

def _detector_tree(directory):
    """{filename: full text} for every ``_detector`` series file."""
    out = {}
    for name in sorted(os.listdir(directory)):
        if name.startswith("_detector.") and name.endswith(".tsv"):
            with open(os.path.join(directory, name),
                      encoding="utf-8") as fh:
                out[name] = fh.read()
    return out


@pytest.mark.parametrize("seed", DIFF_SEEDS)
def test_sharded_detector_series_bit_identical(seed, tmp_path):
    """replay --detectors == replay --detectors --shards 2: the
    ``_detector`` files agree byte for byte, for five random workloads
    carrying both scripted attacks, through the real CLI."""
    from repro.cli import main as cli_main

    stream = tmp_path / "stream.txt"
    assert cli_main(["simulate", "--preset", "tiny", "--seed", str(seed),
                     "--duration", "300", "--qps", "15",
                     "--attack", "tunnel:120:10",
                     "--attack", "watertorture:120:10",
                     "-o", str(stream)]) == 0
    single = tmp_path / "single"
    sharded = tmp_path / "sharded"
    assert cli_main(["replay", str(stream), str(single),
                     "--detectors"]) == 0
    assert cli_main(["replay", str(stream), str(sharded), "--detectors",
                     "--shards", "2", "--transport", "binary"]) == 0
    ours, theirs = _detector_tree(str(single)), _detector_tree(str(sharded))
    assert ours, "no _detector series written"
    assert sorted(ours) == sorted(theirs)
    for name in ours:
        assert ours[name] == theirs[name], "byte mismatch in %s" % name
    # the comparison exercised live flag paths, not all-quiet windows
    flagged = sum(row["flagged"]
                  for d in read_series(str(single), "_detector", "minutely")
                  for key, row in d.rows if key in ("exfil", "ddos", "noh"))
    assert flagged > 0


@settings(max_examples=25, deadline=None)
@given(st.lists(st.text(alphabet=st.sampled_from(_HOSTILE_ALPHABET),
                        min_size=1, max_size=24),
                min_size=1, max_size=30))
def test_detector_rows_survive_tsv_roundtrip(qnames):
    """Hostile qnames (tabs, newlines, backslashes, '#', non-ASCII)
    flow through the detectors into ``_detector`` row keys that survive
    the TSV escape roundtrip: keys byte-exact, values stable after one
    quantization pass (floats serialize at fixed decimal precision)."""
    import tempfile

    from repro.detect import build_detectors

    detectors = build_detectors(True)
    for qname in qnames:
        detectors.observe(make_txn(qname=qname))
    rows = detectors.cut(0.0, 60.0)
    columns = sorted({c for _, row in rows for c in row})
    data = TimeSeriesData("_detector", "minutely", 0, columns=columns,
                          rows=rows, stats={"rows": len(rows)})
    with tempfile.TemporaryDirectory() as d:
        once = read_tsv(write_tsv(d, data))
        twice = read_tsv(write_tsv(d, once))
    assert [key for key, _ in once.rows] == [key for key, _ in rows]
    assert twice.rows == once.rows
    assert twice.stats == once.stats == {"rows": len(rows)}


# -- encrypted-DNS scenario differentials --------------------------------
#
# The blinding model makes three promises the harness below checks
# through the real CLI, for five random workloads each:
#
#  1. an encrypted-capable scenario at fraction 0 is byte-identical to
#     a scenario that never heard of encryption (enabling the feature
#     costs nothing until the first resolver moves);
#  2. raising the fraction *only* blinds -- observation volume (the
#     ``seen`` accounting) is invariant, content datasets degrade
#     monotonically, and the ``_encrypted`` channel only grows (the
#     per-resolver hash-threshold assignment nests);
#  3. the ``_encrypted`` and ``_vantage_*`` meta-series are
#     bit-identical (``#stats`` included) between a sharded run and a
#     single process, like the ``_detector`` promise above.

def _simulate_stream(cli_main, tmp_path, seed, name, extra=()):
    stream = tmp_path / ("%s.txt" % name)
    assert cli_main(["simulate", "--preset", "tiny", "--seed", str(seed),
                     "--duration", "120", "--qps", "15",
                     "-o", str(stream)] + list(extra)) == 0
    return stream


@pytest.mark.parametrize("seed", DIFF_SEEDS)
def test_plaintext_encrypted_scenario_byte_identical(seed, tmp_path):
    """simulate --encrypted-fraction 0 (with non-default DoH share and
    padding knobs armed) produces the exact bytes of a simulate that
    never saw the flags, and replays to the same TSV tree."""
    from repro.cli import main as cli_main

    plain = _simulate_stream(cli_main, tmp_path, seed, "plain")
    armed = _simulate_stream(
        cli_main, tmp_path, seed, "armed",
        ["--encrypted-fraction", "0", "--doh-share", "0.9",
         "--padding-block", "468"])
    assert plain.read_bytes() == armed.read_bytes()
    out_plain = tmp_path / "out-plain"
    out_armed = tmp_path / "out-armed"
    assert cli_main(["replay", str(plain), str(out_plain)]) == 0
    assert cli_main(["replay", str(armed), str(out_armed)]) == 0
    ours, theirs = _tsv_tree(str(out_plain)), _tsv_tree(str(out_armed))
    assert sorted(ours) == sorted(theirs)
    for name in ours:
        assert ours[name] == theirs[name], "row mismatch in %s" % name
    # and no _encrypted series materialized for an all-plaintext stream
    assert not any(name.startswith("_encrypted.")
                   for name in os.listdir(str(out_plain)))


@pytest.mark.parametrize("seed", DIFF_SEEDS)
def test_blindness_monotone_as_fraction_rises(seed, tmp_path):
    """A 0 -> 0.4 -> 0.8 encrypted-fraction sweep of one workload:
    observation volume is invariant, every content dataset's weight is
    non-increasing, the _encrypted channel's is non-decreasing, and
    ``report --blindness`` agrees (exit 0 in order, exit 3 shuffled)."""
    from repro.analysis.blindness import (
        ENCRYPTED_DATASET, evaluate_blindness, summarize_directory)
    from repro.cli import main as cli_main

    sweep = []
    for fraction in ("0", "0.4", "0.8"):
        stream = _simulate_stream(
            cli_main, tmp_path, seed, "f%s" % fraction,
            ["--encrypted-fraction", fraction])
        out = tmp_path / ("out-f%s" % fraction)
        assert cli_main(["replay", str(stream), str(out)]) == 0
        sweep.append((fraction, summarize_directory(str(out))))
    assert evaluate_blindness(sweep) == []
    base = sweep[0][1]
    high = sweep[-1][1]
    # blinding moved real traffic: the channel is populated and the
    # content datasets lost weight
    assert high[ENCRYPTED_DATASET].weight > 0
    # a heavily blinded sweep may drop qname entirely (all windows
    # empty -> no files), which summarizes as weight 0
    high_qname = high.get("qname")
    assert (high_qname.weight if high_qname is not None else 0.0) \
        < base["qname"].weight
    # sensors still saw every transaction: each window's seen
    # accounting is invariant across the sweep.  (A dataset can lose
    # whole *files* -- a window whose every row was blinded writes
    # nothing -- so the comparison is per existing window, and a
    # blinded sweep never grows a content dataset's window set.)
    def seen_by_window(directory, dataset):
        return {d.start_ts: d.stats.get("seen")
                for d in read_series(directory, dataset, "minutely")}

    for dataset in base:
        base_seen = seen_by_window(str(tmp_path / "out-f0"), dataset)
        for fraction, _summaries in sweep[1:]:
            here = seen_by_window(
                str(tmp_path / ("out-f%s" % fraction)), dataset)
            assert set(here) <= set(base_seen), dataset
            for start_ts, seen in here.items():
                assert seen == base_seen[start_ts], (dataset, start_ts)
    # the CLI gate agrees, both ways
    dirs = [str(tmp_path / ("out-f%s" % f)) for f in ("0", "0.4", "0.8")]
    assert cli_main(["report", "--blindness"] + dirs) == 0
    assert cli_main(["report", "--blindness", dirs[2], dirs[0],
                     dirs[1]]) == 3


def _meta_series_tree(directory, prefixes=("_encrypted.", "_vantage_")):
    """{filename: full text} for the encrypted/vantage meta-series."""
    out = {}
    for name in sorted(os.listdir(directory)):
        if name.endswith(".tsv") and name.startswith(prefixes):
            with open(os.path.join(directory, name),
                      encoding="utf-8") as fh:
                out[name] = fh.read()
    return out


@pytest.mark.parametrize("seed", DIFF_SEEDS)
def test_sharded_encrypted_and_vantage_bit_identical(seed, tmp_path):
    """replay --vantage of an encrypted-mix stream == the same with
    --shards 2 --transport binary: the _encrypted and _vantage_* files
    agree byte for byte, #stats trailers included."""
    from repro.cli import main as cli_main

    vdb = tmp_path / "vantage.tsv"
    stream = _simulate_stream(
        cli_main, tmp_path, seed, "mix",
        ["--encrypted-fraction", "0.5", "--vantage-db", str(vdb)])
    single = tmp_path / "single"
    sharded = tmp_path / "sharded"
    assert cli_main(["replay", str(stream), str(single),
                     "--vantage", str(vdb)]) == 0
    assert cli_main(["replay", str(stream), str(sharded),
                     "--vantage", str(vdb),
                     "--shards", "2", "--transport", "binary"]) == 0
    ours = _meta_series_tree(str(single))
    theirs = _meta_series_tree(str(sharded))
    assert any(name.startswith("_encrypted.") for name in ours), \
        "no _encrypted series written"
    assert any(name.startswith("_vantage_") for name in ours), \
        "no _vantage series written"
    assert sorted(ours) == sorted(theirs)
    for name in ours:
        assert ours[name] == theirs[name], "byte mismatch in %s" % name
    # the rest of the tree agrees too (rows; flush accounting may
    # legitimately differ only for _platform, excluded by _tsv_tree)
    rows_ours, rows_theirs = _tsv_tree(str(single)), _tsv_tree(str(sharded))
    assert sorted(rows_ours) == sorted(rows_theirs)
    for name in rows_ours:
        assert rows_ours[name] == rows_theirs[name]
