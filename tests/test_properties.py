"""Cross-module property-based tests: system-level invariants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnswire.constants import QTYPE, RCODE
from repro.observatory.aggregate import aggregate_series
from repro.observatory.pipeline import Observatory
from repro.observatory.transaction import Transaction
from repro.observatory.tsv import TimeSeriesData, read_tsv, write_tsv
from tests.util import make_nxdomain, make_txn

# -- strategies ---------------------------------------------------------

qtypes = st.sampled_from([QTYPE.A, QTYPE.AAAA, QTYPE.NS, QTYPE.MX,
                          QTYPE.TXT, QTYPE.PTR])
rcodes = st.sampled_from(list(RCODE))
names = st.sampled_from([
    "example.com", "www.example.com", "a.b.c.example.org",
    "bbc.co.uk", "x.ck", ".",
])


@st.composite
def transactions(draw):
    answered = draw(st.booleans())
    answer_count = draw(st.integers(0, 3))
    rcode = draw(rcodes) if answered else None
    if rcode != RCODE.NOERROR:
        answer_count = 0
    return make_txn(
        ts=draw(st.floats(0, 1000, allow_nan=False)),
        qname=draw(names),
        qtype=draw(qtypes),
        rcode=rcode,
        answered=answered,
        aa=draw(st.booleans()),
        answer_count=answer_count,
        answer_ttls=tuple([300] * answer_count),
        answer_ips=tuple("198.51.100.%d" % i for i in range(answer_count)),
        authority_ns_count=draw(st.integers(0, 2)),
        delay_ms=draw(st.floats(0.1, 500, allow_nan=False)),
        observed_ttl=draw(st.integers(30, 255)),
        response_size=draw(st.integers(12, 1400)),
    )


# -- properties ---------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(st.lists(transactions(), min_size=1, max_size=60))
def test_transaction_line_roundtrip_property(txns):
    """Every transaction survives the §2.1 line serialization (floats
    up to the format's fixed decimal precision)."""
    for txn in txns:
        back = Transaction.from_line(txn.to_line())
        for attr in Transaction.__slots__:
            a, b = getattr(back, attr), getattr(txn, attr)
            if attr == "ts":
                assert abs(a - b) < 1e-6, attr
            elif attr == "delay_ms":
                assert abs(a - b) < 1e-3, attr
            else:
                assert a == b, attr


@settings(max_examples=20, deadline=None)
@given(st.lists(transactions(), min_size=1, max_size=80))
def test_observatory_conserves_transactions(txns):
    """hits summed over dumped rows never exceed ingested transactions,
    and equals them when the top-k cache is big enough."""
    txns = sorted(txns, key=lambda t: t.ts)
    obs = Observatory(datasets=[("qname", 1000)], use_bloom_gate=False,
                      skip_recent_inserts=False)
    obs.consume(txns)
    obs.finish()
    dumped = sum(row["hits"] for d in obs.dumps["qname"]
                 for _, row in d.rows)
    assert dumped == len(txns)


@settings(max_examples=20, deadline=None)
@given(st.lists(transactions(), min_size=1, max_size=80),
       st.integers(1, 4))
def test_capture_ratio_monotone_in_k(txns, small_k):
    """A bigger top-k cache never captures less traffic."""
    txns = sorted(txns, key=lambda t: t.ts)
    small = Observatory(datasets=[("qname", small_k)],
                        use_bloom_gate=False)
    big = Observatory(datasets=[("qname", 1000)], use_bloom_gate=False)
    small.consume(txns)
    big.consume(txns)
    assert big.capture_ratios()["qname"] >= \
        small.capture_ratios()["qname"] - 1e-9


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(
    st.sampled_from(["k1", "k2", "k3"]),
    st.integers(0, 100),
    st.floats(0, 50, allow_nan=False),
), min_size=1, max_size=30))
def test_aggregation_preserves_counter_mass(entries):
    """Summed counter mass is invariant under time aggregation when
    expected_points equals the file count."""
    series_list = []
    for i, (key, hits, delay) in enumerate(entries):
        series_list.append(TimeSeriesData(
            "x", "minutely", i * 60, columns=["hits", "delay_q50"],
            rows=[(key, {"hits": hits, "delay_q50": delay})]))
    agg = aggregate_series(series_list, "x", "decaminutely", 0,
                           expected_points=len(series_list))
    total_in = sum(h for _, h, _ in entries)
    total_out = sum(row["hits"] for _, row in agg.rows) * len(series_list)
    assert abs(total_out - total_in) < 1e-6


@settings(max_examples=15, deadline=None)
@given(st.lists(st.tuples(
    st.text(alphabet="abc123.", min_size=1, max_size=20).map(
        lambda s: s.strip(".") or "k"),
    st.integers(0, 10**6),
), min_size=1, max_size=20, unique_by=lambda kv: kv[0]),
    st.integers(0, 10**6))
def test_tsv_roundtrip_property(rows, start):
    """Arbitrary keys and integer values survive the TSV format."""
    import tempfile

    data = TimeSeriesData("prop", "minutely", start, columns=["hits"],
                          rows=[(k, {"hits": v}) for k, v in rows])
    with tempfile.TemporaryDirectory() as d:
        back = read_tsv(write_tsv(d, data))
    assert back.start_ts == start
    assert back.rows == [(k, {"hits": v}) for k, v in rows]


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**31))
def test_simulation_determinism_property(seed):
    """Same seed -> identical stream prefix; independent of process
    hash randomization."""
    from repro.simulation import Scenario, SieChannel

    def prefix(n=40):
        scenario = Scenario.tiny(seed=seed, duration=30.0, client_qps=20.0)
        stream = SieChannel(scenario).run()
        return [next(stream).to_line() for _ in range(n)]

    assert prefix() == prefix()


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(transactions(), st.booleans()),
                min_size=1, max_size=80))
def test_featureset_merge_matches_single_pass(tagged):
    """FeatureSet.merge over an arbitrarily split stream produces the
    same feature row as one pass over the concatenation: counters and
    quantiles exactly, HLL cardinalities exactly too (register-max
    merging is byte-identical when hash seeds are fixed)."""
    from repro.observatory.features import FeatureSet

    left = FeatureSet()
    right = FeatureSet()
    whole = FeatureSet()
    for txn, side in tagged:
        (left if side else right).update(txn)
        whole.update(txn)
    left.merge(right)
    assert left.as_row() == whole.as_row()


@settings(max_examples=10, deadline=None)
@given(st.lists(transactions(), min_size=1, max_size=120),
       st.integers(0, 2**32 - 1))
def test_split_streams_merge_like_one_observatory(txns, salt):
    """Partitioning a stream across independent trackers and merging
    their Space-Saving caches agrees with one tracker over the whole
    stream (uncapped, so the merge must be exact)."""
    import zlib

    from repro.observatory.keys import make_dataset
    from repro.observatory.tracker import TopKTracker

    txns = sorted(txns, key=lambda t: t.ts)
    spec = make_dataset("qname", 1000)
    parts = [TopKTracker(make_dataset("qname", 1000), use_bloom_gate=False)
             for _ in range(2)]
    whole = TopKTracker(spec, use_bloom_gate=False)
    for txn in txns:
        shard = zlib.crc32(("%d|%s" % (salt, txn.qname)).encode()) % 2
        parts[shard].observe(txn)
        whole.observe(txn)
    merged = parts[0].cache
    merged.merge(parts[1].cache)
    assert {e.key for e in merged} == {e.key for e in whole.cache}
    now = txns[-1].ts
    for entry in whole.cache:
        assert merged.rate(entry.key, now) == \
            pytest.approx(whole.cache.rate(entry.key, now), rel=1e-9)
        assert merged.get(entry.key).hits == entry.hits
