"""Tests for the shared-memory SPSC ring transport.

The ring is the only component in the codebase doing lock-free
cross-process byte plumbing, so the tests lean on properties: frame
roundtrips over the whole payload-size range (hypothesis), byte-wise
wraparound across many segment laps, watermark backpressure, and the
fault contract (timeout and SIGKILLed-peer both surface as named
``RuntimeError`` subclasses, never a hang).
"""

import multiprocessing
import os
import signal
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observatory.ringbuf import (
    RingError,
    RingHandle,
    RingPeerDead,
    RingReceiver,
    RingSender,
    RingTimeout,
    SpscRing,
)


@pytest.fixture
def ring():
    r = SpscRing.create(256)
    yield r
    r.close()


class TestFrameRoundtrip:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.binary(min_size=0, max_size=60), max_size=20))
    def test_sequential_roundtrip(self, payloads):
        """Any sequence of payloads (0..max_payload bytes each) comes
        back identical and in order, one frame at a time."""
        ring = SpscRing.create(64)
        try:
            assert ring.max_payload() == 60
            for payload in payloads:
                assert ring.try_write(payload) is True
                assert ring.try_read() == payload
            assert ring.try_read() is False
        finally:
            ring.close()

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_interleaved_roundtrip(self, data):
        """Random write/read interleavings (bounded by capacity) never
        lose, duplicate, or reorder frames."""
        ring = SpscRing.create(128)
        try:
            pending = []
            for step in range(data.draw(st.integers(0, 40))):
                if data.draw(st.booleans()):
                    payload = data.draw(
                        st.binary(min_size=0, max_size=40),
                        label="payload %d" % step)
                    if ring.try_write(payload):
                        pending.append(payload)
                else:
                    got = ring.try_read()
                    if pending:
                        assert got == pending.pop(0)
                    else:
                        assert got is False
            for payload in pending:
                assert ring.try_read() == payload
            assert ring.try_read() is False
        finally:
            ring.close()

    def test_empty_payload(self, ring):
        assert ring.try_write(b"") is True
        assert ring.try_read() == b""

    def test_max_payload_exact_fit(self):
        ring = SpscRing.create(64)
        try:
            payload = bytes(range(60))
            assert ring.try_write(payload) is True
            assert ring.occupancy() == 64
            assert ring.try_write(b"") is False  # full to the last byte
            assert ring.try_read() == payload
        finally:
            ring.close()

    def test_multi_part_frames_concatenate(self, ring):
        assert ring.try_write_parts((b"\x01", b"abc", b"", b"def"))
        assert ring.try_read() == b"\x01abcdef"


class TestWraparound:
    def test_frames_straddle_the_boundary(self):
        """Frame sizes coprime with the capacity force the length
        prefix and the payload to straddle the segment edge on every
        lap; contents must survive many laps."""
        ring = SpscRing.create(64)
        try:
            for i in range(200):
                payload = bytes(((i + j) % 256 for j in range(13)))
                assert ring.try_write(payload) is True
                assert ring.try_read() == payload
            # counters are free-running: far past capacity by now
            assert ring._head() == 200 * (4 + 13)
            assert ring.occupancy() == 0
        finally:
            ring.close()

    def test_varied_sizes_across_laps(self):
        ring = SpscRing.create(96)
        try:
            sizes = [0, 1, 31, 7, 64, 17, 3, 92, 5]
            for lap in range(30):
                for size in sizes:
                    payload = os.urandom(size)
                    assert ring.try_write(payload) is True
                    assert ring.try_read() == payload
        finally:
            ring.close()


class TestBackpressure:
    def test_try_write_false_when_full(self, ring):
        writes = 0
        while ring.try_write(b"x" * 28):
            writes += 1
        assert writes == 8  # 8 * (4 + 28) == 256
        assert ring.try_write(b"x" * 28) is False
        assert ring.try_read() == b"x" * 28
        assert ring.try_write(b"x" * 28) is True  # space reclaimed

    def test_oversized_payload_raises(self, ring):
        with pytest.raises(ValueError, match="exceeds ring capacity"):
            ring.try_write(b"x" * 253)  # 253 + 4 > 256

    def test_blocking_write_times_out(self, ring):
        while ring.try_write(b"x" * 28):
            pass
        with pytest.raises(RingTimeout, match="timed out"):
            ring.write(b"y", timeout=0.05)

    def test_blocking_read_times_out(self, ring):
        with pytest.raises(RingTimeout, match="timed out"):
            ring.read(timeout=0.05)

    def test_peer_death_interrupts_write(self, ring):
        while ring.try_write(b"x" * 28):
            pass
        with pytest.raises(RingPeerDead):
            ring.write(b"y", timeout=5.0, peer_alive=lambda: False)

    def test_peer_death_interrupts_read(self, ring):
        with pytest.raises(RingPeerDead):
            ring.read(timeout=5.0, peer_alive=lambda: False)

    def test_ring_errors_are_runtime_errors(self):
        """The PR 2 fault contract: transport faults surface as named
        RuntimeErrors the coordinator can catch uniformly."""
        assert issubclass(RingTimeout, RingError)
        assert issubclass(RingPeerDead, RingError)
        assert issubclass(RingError, RuntimeError)


class TestEofAndLifecycle:
    def test_close_write_drains_then_eof(self, ring):
        ring.try_write(b"tail")
        ring.close_write()
        assert ring.try_read() == b"tail"
        assert ring.try_read() is None  # clean EOF, not "would block"
        assert ring.read(timeout=1.0) is None

    def test_attach_shares_the_segment(self, ring):
        other = SpscRing.attach(ring.handle)
        try:
            assert ring.try_write(b"hello") is True
            assert other.try_read() == b"hello"
            assert other.try_write(b"back") is True
            assert ring.try_read() == b"back"
        finally:
            other.close()

    def test_handle_is_picklable_descriptor(self, ring):
        import pickle
        handle = pickle.loads(pickle.dumps(ring.handle))
        assert isinstance(handle, RingHandle)
        assert handle.name == ring.handle.name
        assert handle.capacity == ring.capacity

    def test_owner_close_unlinks(self):
        from multiprocessing import shared_memory
        ring = SpscRing.create(64)
        name = ring.handle.name
        ring.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_close_is_idempotent(self, ring):
        ring.close()
        ring.close()


class TestProtocolEndpoints:
    def test_tagged_message_roundtrip(self, ring):
        sender = RingSender(ring)
        receiver = RingReceiver(ring)
        sender.put(("batch", b"line1\nline2"))
        sender.put(("cut", 120))
        sender.put(("cut", 120.5))
        sender.put(("finish",))
        assert receiver.get() == ("batch", b"line1\nline2")
        got = receiver.get()
        assert got == ("cut", 120)
        assert isinstance(got[1], int)  # exact integer grid restored
        assert receiver.get() == ("cut", 120.5)
        assert receiver.get() == ("finish",)

    def test_batch_payload_accepts_bytearray(self, ring):
        """The ring transport hands the reusable encode buffer over
        directly; it must be copied out synchronously."""
        sender = RingSender(ring)
        receiver = RingReceiver(ring)
        buf = bytearray(b"first")
        sender.put(("batch", buf))
        del buf[:]
        buf += b"second"
        sender.put(("batch", buf))
        assert receiver.get() == ("batch", b"first")
        assert receiver.get() == ("batch", b"second")

    def test_unknown_tag_rejected(self, ring):
        sender = RingSender(ring)
        with pytest.raises(ValueError, match="unknown ring message"):
            sender.put(("bogus",))

    def test_producer_eof_reads_as_finish(self, ring):
        ring.close_write()
        assert RingReceiver(ring).get() == ("finish",)

    def test_sender_counts_frames_and_bytes(self, ring):
        sender = RingSender(ring)
        sender.put(("batch", b"12345678"))
        sender.put(("finish",))
        row = sender.telemetry_row()
        assert row["frames"] == 2
        assert row["bytes"] == 9 + 1  # tag + payload, tag only
        assert row["stalls"] == 0

    def test_sender_counts_stalls(self):
        ring = SpscRing.create(32)
        try:
            sender = RingSender(ring, timeout=0.05)
            sender.put(("batch", b"x" * 20))
            with pytest.raises(RingError, match="timed out"):
                sender.put(("batch", b"y" * 20))
            row = sender.telemetry_row()
            assert row["stalls"] == 1
            assert row["stall_ms"] > 0
        finally:
            ring.close()

    def test_sender_error_names_the_link(self):
        ring = SpscRing.create(32)
        try:
            sender = RingSender(ring, name="shard 3 ring", timeout=0.05)
            sender.put(("batch", b"x" * 20))
            with pytest.raises(RingError, match="shard 3 ring"):
                sender.put(("batch", b"y" * 20))
        finally:
            ring.close()


def _consume_forever(handle):  # pragma: no cover - child process body
    ring = SpscRing.attach(handle)
    try:
        time.sleep(3600)
    finally:
        ring.close()


class TestCrossProcess:
    def test_sigkilled_consumer_surfaces_as_peer_dead(self):
        """SIGKILL-mid-write recovery: a producer blocked on a full
        ring whose consumer is killed gets RingPeerDead within the
        liveness poll interval -- never a hang."""
        ctx = multiprocessing.get_context(
            "fork" if hasattr(os, "fork") else None)
        ring = SpscRing.create(64)
        child = ctx.Process(target=_consume_forever, args=(ring.handle,),
                            daemon=True)
        child.start()
        try:
            while ring.try_write(b"x" * 28):
                pass  # fill the ring; the child never drains it
            os.kill(child.pid, signal.SIGKILL)
            child.join(timeout=5.0)
            started = time.monotonic()
            with pytest.raises(RingPeerDead):
                ring.write(b"y" * 28, timeout=30.0,
                           peer_alive=child.is_alive)
            assert time.monotonic() - started < 5.0
        finally:
            if child.is_alive():  # pragma: no cover - cleanup path
                child.terminate()
            ring.close()
