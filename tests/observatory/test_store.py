"""Tests for the indexed SeriesStore read path."""

import json
import os
import threading

import pytest

from repro.observatory.store import MANIFEST_NAME, SeriesStore
from repro.observatory.tsv import TimeSeriesData, read_series, write_tsv


def make_window(tmp_path, start, dataset="srvip", granularity="minutely",
                rows=None):
    rows = rows if rows is not None else [
        ("192.0.2.1", {"hits": 10 + start, "ok": 9}),
        ("192.0.2.2", {"hits": 5, "ok": 5}),
    ]
    data = TimeSeriesData(dataset, granularity, start,
                          columns=["hits", "ok"], rows=rows,
                          stats={"seen": 20, "kept": 15})
    return write_tsv(str(tmp_path), data)


class TestIndex:
    def test_datasets_summary_without_opens(self, tmp_path):
        for start in (0, 60, 120):
            make_window(tmp_path, start)
        make_window(tmp_path, 0, dataset="qtype")
        store = SeriesStore(str(tmp_path))
        summary = store.datasets()
        assert summary["srvip"]["minutely"] == {
            "windows": 3, "first_ts": 0, "last_ts": 120}
        assert summary["qtype"]["minutely"]["windows"] == 1
        assert store.parses == 0  # the summary is index-only

    def test_select_is_sorted_and_range_filtered(self, tmp_path):
        for start in (180, 0, 120, 60):
            make_window(tmp_path, start)
        store = SeriesStore(str(tmp_path))
        assert [r.start_ts for r in store.select("srvip")] == \
            [0, 60, 120, 180]
        assert [r.start_ts
                for r in store.select("srvip", start_ts=60, end_ts=180)] \
            == [60, 120]

    def test_read_matches_read_series(self, tmp_path):
        for start in (0, 60, 120):
            make_window(tmp_path, start)
        store = SeriesStore(str(tmp_path))
        got = store.read("srvip")
        want = read_series(str(tmp_path), "srvip")
        assert [(d.start_ts, d.rows, d.stats) for d in got] == \
            [(d.start_ts, d.rows, d.stats) for d in want]

    def test_unknown_dataset_empty(self, tmp_path):
        store = SeriesStore(str(tmp_path))
        assert store.select("nothing") == []
        assert store.read("nothing") == []
        assert store.datasets() == {}

    def test_missing_directory(self, tmp_path):
        store = SeriesStore(str(tmp_path / "nope"), manifest=False)
        assert len(store) == 0


class TestCache:
    def test_lru_serves_repeat_reads_without_parsing(self, tmp_path):
        for start in (0, 60):
            make_window(tmp_path, start)
        store = SeriesStore(str(tmp_path))
        store.read("srvip")
        assert store.parses == 2
        store.read("srvip")
        store.read("srvip", start_ts=60)
        assert store.parses == 2
        assert store.cache_info()["hit_ratio"] > 0.5

    def test_cache_bounded(self, tmp_path):
        for start in range(0, 600, 60):
            make_window(tmp_path, start)
        store = SeriesStore(str(tmp_path), cache_windows=3)
        store.read("srvip")
        assert store.cache_info()["cached_windows"] == 3

    def test_zero_cache_disables(self, tmp_path):
        make_window(tmp_path, 0)
        store = SeriesStore(str(tmp_path), cache_windows=0)
        store.read("srvip")
        store.read("srvip")
        assert store.parses == 2
        assert store.cache_info()["cached_windows"] == 0

    def test_rewritten_file_invalidated(self, tmp_path):
        path = make_window(tmp_path, 0)
        store = SeriesStore(str(tmp_path))
        assert store.read("srvip")[0].rows[0][1]["hits"] == 10
        make_window(tmp_path, 0, rows=[("192.0.2.9", {"hits": 77, "ok": 1})])
        # Force a distinct mtime even on coarse-timestamp filesystems.
        os.utime(path, ns=(1, 1))
        store.refresh()
        assert store.read("srvip")[0].rows[0][1]["hits"] == 77

    def test_deleted_file_dropped_on_refresh(self, tmp_path):
        path = make_window(tmp_path, 0)
        make_window(tmp_path, 60)
        store = SeriesStore(str(tmp_path))
        os.remove(path)
        store.refresh()
        assert [r.start_ts for r in store.select("srvip")] == [60]


class TestFollow:
    def test_follow_picks_up_new_windows(self, tmp_path):
        make_window(tmp_path, 0)
        store = SeriesStore(str(tmp_path), follow=True)
        assert len(store.select("srvip")) == 1
        make_window(tmp_path, 60)
        assert [r.start_ts for r in store.select("srvip")] == [0, 60]

    def test_non_follow_requires_explicit_refresh(self, tmp_path):
        make_window(tmp_path, 0)
        store = SeriesStore(str(tmp_path))
        make_window(tmp_path, 60)
        assert len(store.select("srvip")) == 1
        store.refresh()
        assert len(store.select("srvip")) == 2

    def test_follow_never_serves_torn_window(self, tmp_path):
        """A follow-mode store polling a live writer sees every new
        window either complete or not at all (atomic writes + listing
        reconciliation)."""
        rows = [("key-%05d" % i, {"hits": i, "ok": i}) for i in range(2000)]
        store = SeriesStore(str(tmp_path), follow=True, cache_windows=4)
        done = threading.Event()

        def writer():
            try:
                for start in range(0, 20 * 60, 60):
                    make_window(tmp_path, start, rows=rows)
            finally:
                done.set()

        thread = threading.Thread(target=writer)
        thread.start()
        torn = []
        try:
            while not done.is_set():
                for data in store.read("srvip"):
                    if len(data.rows) != len(rows) or \
                            "seen" not in data.stats:
                        torn.append(data.start_ts)
        finally:
            thread.join()
        assert not torn
        assert len(store.read("srvip")) == 20


class TestManifest:
    def test_manifest_persisted_and_reloaded(self, tmp_path):
        for start in (0, 60):
            make_window(tmp_path, start)
        store = SeriesStore(str(tmp_path))
        store.read("srvip")  # learn row counts + stats
        store.flush_manifest()
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        name = "srvip.minutely.0000000000.tsv"
        assert manifest["windows"][name]["rows"] == 2
        assert manifest["windows"][name]["stats"]["seen"] == 20

        reopened = SeriesStore(str(tmp_path))
        ref = reopened.select("srvip")[0]
        assert ref.rows == 2  # metadata survived without a parse
        assert reopened.parses == 0

    def test_stale_manifest_entry_invalidated(self, tmp_path):
        path = make_window(tmp_path, 0)
        store = SeriesStore(str(tmp_path))
        store.read("srvip")
        store.flush_manifest()
        make_window(tmp_path, 0,
                    rows=[("x", {"hits": 1, "ok": 1}),
                          ("y", {"hits": 1, "ok": 1}),
                          ("z", {"hits": 1, "ok": 1})])
        os.utime(path, ns=(123, 123))
        reopened = SeriesStore(str(tmp_path))
        data = reopened.read("srvip")[0]
        assert len(data.rows) == 3

    def test_corrupt_manifest_ignored(self, tmp_path):
        make_window(tmp_path, 0)
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        store = SeriesStore(str(tmp_path))
        assert len(store.select("srvip")) == 1

    def test_manifest_disabled(self, tmp_path):
        make_window(tmp_path, 0)
        SeriesStore(str(tmp_path), manifest=False)
        assert not (tmp_path / MANIFEST_NAME).exists()


class TestQueries:
    def setup_windows(self, tmp_path):
        make_window(tmp_path, 0, rows=[
            ("a", {"hits": 10, "ok": 10}), ("b", {"hits": 1, "ok": 1})])
        make_window(tmp_path, 60, rows=[
            ("b", {"hits": 20, "ok": 20}), ("c", {"hits": 2, "ok": 2})])

    def test_topk(self, tmp_path):
        self.setup_windows(tmp_path)
        store = SeriesStore(str(tmp_path))
        top = store.topk("srvip", n=2)
        assert [key for key, _ in top] == ["b", "a"]
        assert top[0][1]["hits"] == 21

    def test_topk_range(self, tmp_path):
        self.setup_windows(tmp_path)
        store = SeriesStore(str(tmp_path))
        top = store.topk("srvip", n=1, end_ts=60)
        assert [key for key, _ in top] == ["a"]

    def test_key_series_fills_absent_windows_with_zero(self, tmp_path):
        self.setup_windows(tmp_path)
        store = SeriesStore(str(tmp_path))
        assert store.key_series("srvip", "b") == [(0, 1), (60, 20)]
        assert store.key_series("srvip", "a") == [(0, 10), (60, 0)]

    def test_has_key(self, tmp_path):
        self.setup_windows(tmp_path)
        store = SeriesStore(str(tmp_path))
        assert store.has_key("srvip", "c")
        assert not store.has_key("srvip", "c", end_ts=60)
        assert not store.has_key("srvip", "zz")

    def test_accumulate_matches_seriesops(self, tmp_path):
        from repro.analysis.seriesops import accumulate_dumps

        self.setup_windows(tmp_path)
        store = SeriesStore(str(tmp_path))
        assert store.accumulate("srvip") == \
            accumulate_dumps(read_series(str(tmp_path), "srvip"))

    def test_accumulate_memoized_over_unchanged_windows(self, tmp_path):
        self.setup_windows(tmp_path)
        store = SeriesStore(str(tmp_path))
        first = store.accumulate("srvip")
        parses = store.parses
        # same selection, same file revisions: the exact same mapping
        assert store.accumulate("srvip") is first
        assert store.parses == parses
        # a different range is a different accumulation
        assert store.accumulate("srvip", end_ts=60) is not first

    def test_accumulate_memo_invalidated_by_new_window(self, tmp_path):
        self.setup_windows(tmp_path)
        store = SeriesStore(str(tmp_path))
        first = store.accumulate("srvip")
        make_window(tmp_path, 120, rows=[("d", {"hits": 5, "ok": 5})])
        store.refresh()
        second = store.accumulate("srvip")
        assert second is not first
        assert second["d"]["hits"] == 5


class TestNotifyFlush:
    """The daemon's O(1) reconcile: one stat, no directory scan."""

    def test_new_window_visible_without_refresh(self, tmp_path):
        make_window(tmp_path, 0)
        store = SeriesStore(str(tmp_path))  # no follow re-scans
        path = make_window(tmp_path, 60)
        assert [r.start_ts for r in store.select("srvip")] == [0]
        ref = store.notify_flush(path)
        assert ref is not None and ref.start_ts == 60
        assert [r.start_ts for r in store.select("srvip")] == [0, 60]
        assert store.parses == 0  # reconcile is stat-only

    def test_notify_reconciles_only_the_named_file(self, tmp_path):
        store = SeriesStore(str(tmp_path))
        first = make_window(tmp_path, 0)
        make_window(tmp_path, 60)  # flushed but never notified
        store.notify_flush(first)
        assert [r.start_ts for r in store.select("srvip")] == [0]

    def test_notify_same_revision_returns_existing_ref(self, tmp_path):
        path = make_window(tmp_path, 0)
        store = SeriesStore(str(tmp_path))
        before = store.select("srvip")[0]
        assert store.notify_flush(path) is before

    def test_notify_rewrite_invalidates_cached_parse(self, tmp_path):
        path = make_window(tmp_path, 0)
        store = SeriesStore(str(tmp_path))
        assert store.read("srvip")[0].rows[0][1]["hits"] == 10
        make_window(tmp_path, 0,
                    rows=[("192.0.2.9", {"hits": 42, "ok": 1})])
        store.notify_flush(path)
        assert store.read("srvip")[0].rows[0][1]["hits"] == 42

    def test_notify_missing_file_drops_the_ref(self, tmp_path):
        path = make_window(tmp_path, 0)
        store = SeriesStore(str(tmp_path))
        assert len(store.select("srvip")) == 1
        os.remove(path)
        assert store.notify_flush(path) is None
        assert store.select("srvip") == []

    def test_notify_non_series_path_ignored(self, tmp_path):
        store = SeriesStore(str(tmp_path))
        assert store.notify_flush(str(tmp_path / "junk.txt")) is None
        assert len(store) == 0

    def test_notifications_counted(self, tmp_path):
        store = SeriesStore(str(tmp_path))
        store.notify_flush(make_window(tmp_path, 0))
        store.notify_flush(make_window(tmp_path, 60))
        assert store.cache_info()["notifications"] == 2


class TestInodeIdentity:
    def test_same_size_same_mtime_rewrite_detected(self, tmp_path):
        """A same-size rewrite under coarse mtime granularity: only
        the inode distinguishes the revisions (write_tsv's os.replace
        always lands a fresh inode)."""
        path = make_window(tmp_path, 0)
        st = os.stat(path)
        store = SeriesStore(str(tmp_path))
        before = store.select("srvip")[0].etag_token()
        assert store.read("srvip")[0].rows[0][1]["hits"] == 10
        # same formatted width -> same byte size; mtime pinned equal
        make_window(tmp_path, 0, rows=[
            ("192.0.2.1", {"hits": 99, "ok": 9}),
            ("192.0.2.2", {"hits": 5, "ok": 5}),
        ])
        os.utime(path, ns=(st.st_mtime_ns, st.st_mtime_ns))
        assert os.stat(path).st_size == st.st_size
        assert os.stat(path).st_mtime_ns == st.st_mtime_ns
        store.refresh()
        assert store.read("srvip")[0].rows[0][1]["hits"] == 99
        assert store.select("srvip")[0].etag_token() != before

    def test_manifest_v2_roundtrips_inode(self, tmp_path):
        path = make_window(tmp_path, 0)
        store = SeriesStore(str(tmp_path))
        store.flush_manifest()
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert manifest["version"] == 2
        name = os.path.basename(path)
        assert manifest["windows"][name]["ino"] == os.stat(path).st_ino
        reopened = SeriesStore(str(tmp_path))
        assert reopened.select("srvip")[0].ino == os.stat(path).st_ino
        assert reopened.parses == 0


def test_telemetry_registration(tmp_path):
    from repro.observatory.telemetry import Telemetry

    make_window(tmp_path, 0)
    registry = Telemetry()
    store = SeriesStore(str(tmp_path), telemetry=registry)
    store.read("srvip")
    store.read("srvip")
    rows = dict(registry.snapshot(60))
    assert rows["store"]["indexed_windows"] == 1
    assert rows["store"]["hits"] == 1
    assert rows["store"]["misses"] == 1
    # Cumulative columns are differenced per snapshot.
    rows = dict(registry.snapshot(120))
    assert rows["store"]["hits"] == 0


def test_etag_token_changes_with_file(tmp_path):
    path = make_window(tmp_path, 0)
    store = SeriesStore(str(tmp_path))
    before = store.select("srvip")[0].etag_token()
    os.utime(path, ns=(99, 99))
    store.refresh()
    after = store.select("srvip")[0].etag_token()
    assert before != after


def test_windows_of_manifest_never_alias_tmp_files(tmp_path):
    make_window(tmp_path, 0)
    (tmp_path / "srvip.minutely.0000000060.tsv.tmp.123").write_text("junk")
    store = SeriesStore(str(tmp_path))
    assert [r.start_ts for r in store.select("srvip")] == [0]


def test_misses_counted_against_cache_disabled(tmp_path):
    make_window(tmp_path, 0)
    store = SeriesStore(str(tmp_path), cache_windows=0)
    store.read("srvip")
    info = store.cache_info()
    assert info["misses"] == 1 and info["hits"] == 0
