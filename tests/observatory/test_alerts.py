"""Tests for the platform-health alert rule engine."""

import pytest

from repro.observatory.alerts import (
    DEFAULT_RULES,
    Rule,
    evaluate,
    parse_rule,
    parse_rules,
    summarize,
)
from repro.observatory.window import WindowDump


def platform_window(start_ts, rows):
    return WindowDump("_platform", start_ts, list(rows.items()),
                      {"seen": 0, "kept": len(rows)})


class TestParse:
    def test_basic(self):
        rule = parse_rule("capture: tracker.*.capture_ratio >= 0.5")
        assert rule.name == "capture"
        assert rule.component == "tracker.*"
        assert rule.column == "capture_ratio"
        assert rule.op == ">="
        assert rule.threshold == 0.5
        assert rule.windows == 1

    def test_for_n_windows(self):
        rule = parse_rule("lag: window.flush_ms_p95 < 100 for 3 windows")
        assert rule.windows == 3

    def test_spec_roundtrip(self):
        for text in ("a: window.flush_ms_p95 < 250",
                     "b: tracker.*.gate_fpr <= 0.05",
                     "c: shard*.alive >= 1 for 2 windows"):
            assert parse_rule(parse_rule(text).spec()).spec() == \
                parse_rule(text).spec()

    def test_rules_file_with_comments(self):
        rules = parse_rules("""
        # capture floor
        cap: tracker.*.capture_ratio >= 0.5

        fpr: tracker.*.gate_fpr <= 0.05
        """)
        assert [r.name for r in rules] == ["cap", "fpr"]

    @pytest.mark.parametrize("bad", [
        "no-colon tracker.x >= 1",
        "name: nodot >= 1",
        "name: a.b ~= 1",
        "name: a.b >= notanumber",
        "name: a.b >= 1 for x windows",
        ": a.b >= 1",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_rule(bad)

    def test_rejects_bad_windows(self):
        with pytest.raises(ValueError):
            Rule("x", "a", "b", ">=", 1, windows=0)


class TestEvaluate:
    def test_healthy(self):
        series = [platform_window(0, {
            "tracker.srvip": {"capture_ratio": 0.9},
        })]
        rule = parse_rule("cap: tracker.*.capture_ratio >= 0.5")
        (verdict,) = evaluate(series, [rule])
        assert verdict.status == "ok"
        assert verdict.value == 0.9
        assert verdict.component == "tracker.srvip"

    def test_failing(self):
        series = [platform_window(0, {
            "tracker.srvip": {"capture_ratio": 0.2},
        })]
        rule = parse_rule("cap: tracker.*.capture_ratio >= 0.5")
        (verdict,) = evaluate(series, [rule])
        assert verdict.failed
        assert verdict.window_ts == 0

    def test_wildcard_matches_every_component(self):
        series = [platform_window(0, {
            "tracker.srvip": {"capture_ratio": 0.9},
            "tracker.qname": {"capture_ratio": 0.3},
        })]
        rule = parse_rule("cap: tracker.*.capture_ratio >= 0.5")
        verdicts = evaluate(series, [rule])
        status = {v.component: v.status for v in verdicts}
        assert status == {"tracker.srvip": "ok", "tracker.qname": "fail"}

    def test_debounce_for_n_windows(self):
        rule = parse_rule("cap: tracker.*.capture_ratio >= 0.5 "
                          "for 2 windows")
        one_bad = [
            platform_window(0, {"tracker.srvip": {"capture_ratio": 0.9}}),
            platform_window(60, {"tracker.srvip": {"capture_ratio": 0.2}}),
        ]
        (verdict,) = evaluate(one_bad, [rule])
        assert verdict.status == "ok"
        assert verdict.failing_windows == 1
        two_bad = one_bad + [
            platform_window(120, {"tracker.srvip": {"capture_ratio": 0.1}}),
        ]
        (verdict,) = evaluate(two_bad, [rule])
        assert verdict.failed
        assert verdict.failing_windows == 2

    def test_recovery_resets_failure_streak(self):
        rule = parse_rule("cap: tracker.*.capture_ratio >= 0.5 "
                          "for 2 windows")
        series = [
            platform_window(0, {"tracker.srvip": {"capture_ratio": 0.1}}),
            platform_window(60, {"tracker.srvip": {"capture_ratio": 0.2}}),
            platform_window(120, {"tracker.srvip": {"capture_ratio": 0.8}}),
        ]
        (verdict,) = evaluate(series, [rule])
        assert verdict.status == "ok"

    def test_missing_column_is_not_failure(self):
        # gate columns only exist once the Bloom gate engages
        series = [platform_window(0, {
            "tracker.srvip": {"capture_ratio": 0.9},
        })]
        rule = parse_rule("fpr: tracker.*.gate_fpr <= 0.05")
        (verdict,) = evaluate(series, [rule])
        assert verdict.status == "no_data"

    def test_unmatched_component_yields_no_data(self):
        series = [platform_window(0, {"window": {"flush_ms_p95": 2.0}})]
        rule = parse_rule("live: shard*.alive >= 1")
        (verdict,) = evaluate(series, [rule])
        assert verdict.status == "no_data"
        assert verdict.component == "shard*"

    def test_uses_most_recent_window(self):
        rule = parse_rule("cap: tracker.*.capture_ratio >= 0.5")
        series = [
            platform_window(60, {"tracker.srvip": {"capture_ratio": 0.1}}),
            platform_window(0, {"tracker.srvip": {"capture_ratio": 0.9}}),
        ]
        (verdict,) = evaluate(series, [rule])
        assert verdict.failed  # ts=60 is the latest despite list order
        assert verdict.window_ts == 60

    def test_worker_liveness_failure(self):
        series = [platform_window(0, {
            "shard0.link": {"alive": 1, "queue_depth": 0},
            "shard1.link": {"alive": 0, "queue_depth": 9},
        })]
        rule = parse_rule("live: shard*.alive >= 1")
        verdicts = {v.component: v for v in evaluate(series, [rule])}
        assert verdicts["shard0.link"].status == "ok"
        assert verdicts["shard1.link"].failed


class TestSummarize:
    def test_overall_fail(self):
        # capture-floor debounces over 2 windows, so fail both
        series = [
            platform_window(ts, {
                "tracker.srvip": {"capture_ratio": 0.2},
                "window": {"flush_ms_p95": 1.0},
            })
            for ts in (0, 60)
        ]
        verdicts = evaluate(series, DEFAULT_RULES)
        summary = summarize(verdicts)
        assert summary["status"] == "fail"
        assert summary["rules_failed"] >= 1

    def test_overall_ok(self):
        series = [platform_window(0, {
            "tracker.srvip": {"capture_ratio": 0.9, "gate_fpr": 0.001},
            "window": {"flush_ms_p95": 1.0},
            "shard0.link": {"alive": 1},
        })]
        assert summarize(evaluate(series, DEFAULT_RULES))["status"] == "ok"

    def test_overall_no_data(self):
        assert summarize(evaluate([], DEFAULT_RULES))["status"] == "no_data"


def test_verdict_as_dict_is_json_ready():
    import json

    series = [platform_window(0, {"tracker.srvip": {"capture_ratio": 0.2}})]
    verdicts = evaluate(series, DEFAULT_RULES)
    blob = json.dumps([v.as_dict() for v in verdicts])
    assert "capture-floor" in blob


def test_default_rules_cover_roadmap_signals():
    columns = {(r.component, r.column) for r in DEFAULT_RULES}
    assert ("tracker.*", "capture_ratio") in columns
    assert ("tracker.*", "gate_fpr") in columns
    assert ("shard*", "alive") in columns
    assert ("window", "flush_ms_p95") in columns
