"""Tests for the Top-k tracker and window manager."""

import pytest

from repro.observatory.keys import make_dataset
from repro.observatory.tracker import TopKTracker
from repro.observatory.window import WindowManager
from tests.util import make_txn


def tracker(name="srvip", k=8, **kw):
    kw.setdefault("use_bloom_gate", False)
    return TopKTracker(make_dataset(name, k), **kw)


class TestTracker:
    def test_observe_attaches_state(self):
        t = tracker()
        entry = t.observe(make_txn())
        assert entry is not None
        assert entry.state.hits == 1
        t.observe(make_txn(ts=1.0))
        assert entry.state.hits == 2

    def test_filtered_transactions_counted(self):
        t = tracker("aafqdn")
        t.observe(make_txn(aa=False))
        assert t.filtered == 1
        assert t.processed == 0

    def test_state_resets_on_eviction(self):
        t = tracker(k=1)
        t.observe(make_txn(server_ip="192.0.2.1"))
        entry = t.observe(make_txn(server_ip="192.0.2.2", ts=1.0))
        assert entry.key == "192.0.2.2"
        assert entry.state.hits == 1  # fresh stats, not the victim's

    def test_reset_window_stats_keeps_toplist(self):
        t = tracker()
        t.observe(make_txn(server_ip="192.0.2.1"))
        t.reset_window_stats()
        assert len(t) == 1
        assert t.top(1)[0].state.hits == 0

    def test_top_ranking(self):
        t = tracker()
        for i in range(5):
            t.observe(make_txn(server_ip="192.0.2.1", ts=i * 0.1))
        t.observe(make_txn(server_ip="192.0.2.2", ts=0.5))
        assert [e.key for e in t.top(2)] == ["192.0.2.1", "192.0.2.2"]

    def test_repr(self):
        assert "srvip" in repr(tracker())


class TestWindowManager:
    def test_no_dump_within_window(self):
        wm = WindowManager([tracker()], window_seconds=60)
        assert wm.observe(make_txn(ts=0.0)) == []
        assert wm.observe(make_txn(ts=59.9)) == []
        assert wm.windows_completed == 0

    def test_dump_on_boundary(self):
        t = tracker()
        wm = WindowManager([t], window_seconds=60, skip_recent_inserts=False)
        wm.observe(make_txn(ts=0.0))
        dumps = wm.observe(make_txn(ts=60.5))
        assert len(dumps) == 1
        dump = dumps[0]
        assert dump.dataset == "srvip"
        assert dump.start_ts == 0
        assert len(dump.rows) == 1
        assert dump.stats["seen"] == 1

    def test_stats_reset_between_windows(self):
        t = tracker()
        wm = WindowManager([t], window_seconds=60, skip_recent_inserts=False)
        wm.observe(make_txn(ts=0.0))
        wm.observe(make_txn(ts=61.0))
        dumps = wm.observe(make_txn(ts=121.0))
        # Second window saw exactly one transaction.
        assert dumps[0].row_map()["192.0.2.53"]["hits"] == 1

    def test_skip_recent_inserts(self):
        t = tracker()
        wm = WindowManager([t], window_seconds=60, skip_recent_inserts=True)
        wm.observe(make_txn(ts=30.0))  # inserted mid-window
        dumps = wm.observe(make_txn(ts=61.0))
        assert dumps[0].rows == []  # did not survive a full window
        dumps = wm.observe(make_txn(ts=121.0))
        assert len(dumps[0].rows) == 1  # now it did

    def test_gap_fast_forwards_over_empty_windows(self):
        """A stream gap no longer emits one (empty) dump per idle
        window -- the manager flushes once, then realigns straight to
        the gap's far side.  The skipped windows still count."""
        wm = WindowManager([tracker()], window_seconds=60)
        wm.observe(make_txn(ts=0.0))
        dumps = wm.observe(make_txn(ts=200.0))  # skips windows entirely
        assert [d.start_ts for d in dumps] == [0]
        assert wm.window_start == 180
        assert wm.windows_completed == 3  # window 0 + two skipped

    def test_gap_storm_writes_no_empty_files(self, tmp_path):
        """A 1-day sensor outage used to write 1440 header-only TSVs
        per dataset; now the gap produces no files at all."""
        from repro.observatory.pipeline import Observatory

        obs = Observatory(datasets=[("srvip", 8)], window_seconds=60,
                          output_dir=str(tmp_path))
        obs.ingest(make_txn(ts=0.0))
        obs.ingest(make_txn(ts=30.0))
        obs.ingest(make_txn(ts=86_400.0))  # one day later
        obs.finish()
        files = sorted(p.name for p in tmp_path.iterdir())
        # window 0 (non-empty) and the tail window; nothing in between
        assert files == ["srvip.minutely.0000000000.tsv",
                         "srvip.minutely.0000086400.tsv"]
        assert obs.windows.windows_completed == 86_400 // 60 + 1

    def test_flush_partial_window(self):
        wm = WindowManager([tracker()], window_seconds=60,
                           skip_recent_inserts=False)
        assert wm.flush() == []  # nothing ingested yet
        wm.observe(make_txn(ts=5.0))
        dumps = wm.flush()
        assert len(dumps) == 1
        assert len(dumps[0].rows) == 1

    def test_sink_called(self):
        received = []
        wm = WindowManager([tracker()], window_seconds=60,
                           sink=received.append, skip_recent_inserts=False)
        wm.observe(make_txn(ts=0.0))
        wm.observe(make_txn(ts=61.0))
        assert len(received) == 1

    def test_window_alignment(self):
        wm = WindowManager([tracker()], window_seconds=60)
        wm.observe(make_txn(ts=75.0))
        assert wm.window_start == 60

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            WindowManager([], window_seconds=0)

    def test_multiple_trackers_dumped_together(self):
        wm = WindowManager([tracker("srvip"), tracker("qname")],
                           window_seconds=60, skip_recent_inserts=False)
        wm.observe(make_txn(ts=0.0))
        dumps = wm.observe(make_txn(ts=61.0))
        assert {d.dataset for d in dumps} == {"srvip", "qname"}
