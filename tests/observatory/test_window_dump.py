"""Tests for WindowDump conversions and stats bookkeeping."""

import pytest

from repro.observatory.pipeline import Observatory
from repro.observatory.tsv import write_tsv, read_tsv
from repro.observatory.window import WindowDump
from tests.util import make_txn


def test_to_timeseries_roundtrip(tmp_path):
    dump = WindowDump("srvip", 120,
                      [("192.0.2.1", {"hits": 7, "ok": 6})],
                      {"seen": 10, "kept": 7})
    data = dump.to_timeseries()
    assert data.granularity == "minutely"
    assert data.start_ts == 120
    back = read_tsv(write_tsv(str(tmp_path), data))
    assert back.row_map()["192.0.2.1"]["hits"] == 7
    assert back.stats["seen"] == 10


def test_dump_len_and_row_map():
    dump = WindowDump("x", 0, [("a", {"hits": 1}), ("b", {"hits": 2})], {})
    assert len(dump) == 2
    assert dump.row_map()["b"]["hits"] == 2


def test_window_stats_count_seen_and_kept():
    obs = Observatory(datasets=[("srvip", 1)], use_bloom_gate=False,
                      skip_recent_inserts=False)
    # Two servers, capacity 1: some observations land on evicted keys.
    for i in range(20):
        obs.ingest(make_txn(ts=float(i),
                            server_ip="192.0.2.%d" % (1 + i % 2)))
    dumps = obs.finish()
    stats = dumps[0].stats
    assert stats["seen"] == 20
    assert 0 < stats["kept"] <= 20


def test_kept_counts_are_per_dataset():
    obs = Observatory(datasets=[("srvip", 100), ("aafqdn", 100)],
                      use_bloom_gate=False, skip_recent_inserts=False)
    # aa=False transactions are filtered out of aafqdn entirely.
    for i in range(10):
        obs.ingest(make_txn(ts=float(i), aa=False))
    dumps = {d.dataset: d for d in obs.finish()}
    assert dumps["srvip"].stats["kept"] == 10
    assert dumps["aafqdn"].stats["kept"] == 0
