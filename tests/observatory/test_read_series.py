"""Tests for running analyses straight from on-disk TSV series."""

from repro.analysis.distributions import TrafficDistribution
from repro.analysis.seriesops import accumulate_dumps
from repro.observatory.pipeline import Observatory
from repro.observatory.tsv import read_series
from tests.util import make_txn


def make_tsv_dir(tmp_path):
    obs = Observatory(datasets=[("srvip", 64)], output_dir=str(tmp_path),
                      use_bloom_gate=False, skip_recent_inserts=False)
    for i in range(300):
        obs.ingest(make_txn(ts=i * 0.5,
                            server_ip="192.0.2.%d" % (1 + i % 5)))
    obs.finish()
    return obs


def test_read_series_time_ordered(tmp_path):
    make_tsv_dir(tmp_path)
    series = read_series(str(tmp_path), "srvip")
    assert len(series) >= 2
    starts = [s.start_ts for s in series]
    assert starts == sorted(starts)


def test_analysis_from_disk_equals_in_memory(tmp_path):
    obs = make_tsv_dir(tmp_path)
    from_disk = accumulate_dumps(read_series(str(tmp_path), "srvip"))
    in_memory = accumulate_dumps(obs.dumps["srvip"])
    assert set(from_disk) == set(in_memory)
    for key in from_disk:
        assert from_disk[key]["hits"] == in_memory[key]["hits"]
    # A full figure computation works on the disk-loaded rows.
    dist = TrafficDistribution(from_disk)
    assert dist.share_of_top(5) == 1.0


def test_read_series_missing_dataset(tmp_path):
    assert read_series(str(tmp_path), "nothing") == []
