"""Tests for the platform self-telemetry subsystem."""

import pytest

from repro.observatory.aggregate import TimeAggregator
from repro.observatory.pipeline import Observatory
from repro.observatory.telemetry import (
    NULL,
    NULL_INSTRUMENT,
    PLATFORM_DATASET,
    Counter,
    Gauge,
    NullTelemetry,
    Ratio,
    Telemetry,
    Timing,
    resolve_telemetry,
    union_columns,
)
from repro.observatory.tsv import list_series, read_tsv
from tests.util import make_txn


class TestInstruments:
    def test_counter_snapshots_deltas(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.delta() == 5
        c.inc(2)
        assert c.delta() == 2  # only the increment since last snapshot
        assert c.delta() == 0

    def test_gauge_last_value_wins(self):
        g = Gauge()
        g.set(3)
        g.set(7.5)
        assert g.value == 7.5

    def test_timing_drains_and_resets(self):
        t = Timing()
        t.observe(0.010)
        t.observe(0.030)
        row = t.drain("flush")
        assert row["flush_n"] == 2
        assert row["flush_ms_mean"] == pytest.approx(20.0, rel=0.25)
        assert row["flush_ms_max"] == pytest.approx(30.0, rel=0.25)
        assert t.drain("flush")["flush_n"] == 0  # drained

    def test_ratio_drains_per_window(self):
        r = Ratio()
        r.mark(True)
        r.mark(True)
        r.mark(False)
        row = r.drain("hit")
        assert row["hit_n"] == 3
        assert row["hit"] == pytest.approx(2 / 3, abs=1e-3)
        # drained: next window starts from zero observations
        assert r.drain("hit") == {"hit": 0.0, "hit_n": 0}

    def test_null_instrument_absorbs_everything(self):
        NULL_INSTRUMENT.inc()
        NULL_INSTRUMENT.set(1)
        NULL_INSTRUMENT.observe(0.1)
        NULL_INSTRUMENT.mark(True)


class TestRegistry:
    def test_instrument_factories_idempotent(self):
        t = Telemetry()
        assert t.counter("a", "x") is t.counter("a", "x")
        with pytest.raises(TypeError):
            t.gauge("a", "x")  # same name, different kind

    def test_snapshot_rows_per_component(self):
        t = Telemetry()
        t.counter("window", "rows").inc(5)
        t.gauge("coordinator", "depth").set(3)
        rows = dict(t.snapshot())
        assert rows["window"]["rows"] == 5
        assert rows["coordinator"]["depth"] == 3

    def test_sampler_with_delta_columns(self):
        t = Telemetry()
        state = {"total": 10}
        t.register("comp", lambda now: dict(state), deltas=("total",))
        assert dict(t.snapshot())["comp"]["total"] == 10
        state["total"] = 25
        assert dict(t.snapshot())["comp"]["total"] == 15  # differenced

    def test_sampler_receives_now(self):
        t = Telemetry()
        seen = []
        t.register("comp", lambda now: seen.append(now) or {"x": 1})
        t.snapshot(60.0)
        assert seen == [60.0]

    def test_ratio_in_snapshot(self):
        t = Telemetry()
        t.ratio("server.topk", "etag_hit").mark(True)
        rows = dict(t.snapshot())
        assert rows["server.topk"]["etag_hit"] == 1.0
        assert rows["server.topk"]["etag_hit_n"] == 1

    def test_null_telemetry_is_inert(self):
        assert NULL.enabled is False
        assert NULL.counter("a", "b") is NULL_INSTRUMENT
        assert NULL.timing("a", "b") is NULL_INSTRUMENT
        assert NULL.ratio("a", "b") is NULL_INSTRUMENT
        NULL.register("a", lambda now: {})
        assert NULL.snapshot() == []

    def test_resolve_telemetry(self):
        assert resolve_telemetry(False) is NULL
        assert resolve_telemetry(None) is NULL
        assert isinstance(resolve_telemetry(True), Telemetry)
        registry = Telemetry()
        assert resolve_telemetry(registry) is registry
        assert isinstance(resolve_telemetry(NullTelemetry()), NullTelemetry)

    def test_union_columns_first_seen_order(self):
        rows = [("a", {"x": 1, "y": 2}), ("b", {"y": 3, "z": 4})]
        assert union_columns(rows) == ["x", "y", "z"]


class TestPlatformDump:
    def run(self, **kw):
        obs = Observatory(datasets=[("srvip", 8)], window_seconds=60,
                          telemetry=True, **kw)
        for i in range(120):
            obs.ingest(make_txn(ts=float(i),
                                server_ip="192.0.2.%d" % (i % 4)))
        obs.finish()
        return obs

    def test_platform_dump_per_window(self):
        obs = self.run()
        plats = obs.dumps[PLATFORM_DATASET]
        assert [d.start_ts for d in plats] == [0, 60]
        components = [c for c, _ in plats[0].rows]
        assert components == ["window", "tracker.srvip"]

    def test_counters_are_per_window_deltas(self):
        obs = self.run()
        first, second = obs.dumps[PLATFORM_DATASET]
        # 60 txns fell in each window; the cumulative totals (120)
        # must have been differenced per snapshot.
        assert dict(first.rows)["window"]["txns"] == 60
        assert dict(second.rows)["window"]["txns"] == 60
        assert dict(second.rows)["tracker.srvip"]["processed"] == 60

    def test_tracker_row_health_signals(self):
        obs = self.run()
        row = dict(obs.dumps[PLATFORM_DATASET][1].rows)["tracker.srvip"]
        assert row["tracked"] == 4
        assert row["capacity"] == 8
        assert 0.0 < row["capture_ratio"] <= 1.0
        assert row["min_rate"] > 0.0
        assert "gate_fill" in row  # Bloom gate on by default

    def test_platform_tsv_roundtrips_through_aggregator(self, tmp_path):
        d = str(tmp_path)
        obs = Observatory(datasets=[("srvip", 8)], window_seconds=60,
                          output_dir=d, telemetry=True)
        for w in range(11):  # one complete decaminute + tail
            obs.ingest(make_txn(ts=w * 60.0))
        obs.finish()
        minutely = list_series(d, PLATFORM_DATASET, "minutely")
        assert len(minutely) == 11
        data = read_tsv(minutely[0][0])
        assert "txns" in data.columns
        TimeAggregator(d).aggregate_directory(PLATFORM_DATASET)
        deca = list_series(d, PLATFORM_DATASET, "decaminutely")
        assert [s[3] for s in deca] == [0]
        agg = read_tsv(deca[0][0])
        row = agg.row_map()["window"]
        # 10 windows of 1 txn each, averaged over present points.
        assert row["txns"] == pytest.approx(1.0)

    def test_disabled_is_default_and_inert(self):
        obs = Observatory(datasets=[("srvip", 8)], window_seconds=60)
        assert obs.telemetry is NULL
        assert obs.windows._flush_timer is NULL_INSTRUMENT
        obs.ingest(make_txn(ts=0.0))
        obs.ingest(make_txn(ts=61.0))
        obs.finish()
        assert PLATFORM_DATASET not in obs.dumps


class TestShardedTelemetry:
    def test_merged_platform_rows(self):
        from repro.observatory.sharded import ShardedObservatory

        obs = ShardedObservatory(shards=2, datasets=[("srvip", 16)],
                                 window_seconds=60, telemetry=True)
        for i in range(120):
            obs.ingest(make_txn(ts=float(i),
                                server_ip="192.0.2.%d" % (i % 4),
                                resolver_ip="198.51.100.%d" % (i % 5)))
        obs.finish()
        plats = obs.dumps[PLATFORM_DATASET]
        assert len(plats) >= 2
        rows = dict(plats[0].rows)
        assert "coordinator" in rows
        for shard_id in range(2):
            assert "shard%d.link" % shard_id in rows
            assert "shard%d.window" % shard_id in rows
            assert "shard%d.tracker.srvip" % shard_id in rows
        assert rows["coordinator"]["workers_alive"] == 2
        assert rows["coordinator"]["txns"] == 60
        # Shard-local txn counts partition the coordinator's total.
        shard_txns = sum(rows["shard%d.window" % s]["txns"]
                         for s in range(2))
        assert shard_txns == 60

    def test_sharded_disabled_by_default(self):
        from repro.observatory.sharded import ShardedObservatory

        obs = ShardedObservatory(shards=2, datasets=[("srvip", 16)])
        assert obs.telemetry is NULL
        obs.ingest(make_txn(ts=0.0))
        obs.finish()
        assert PLATFORM_DATASET not in obs.dumps
