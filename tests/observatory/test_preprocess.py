"""Tests for raw-packet preprocessing (the §2.1 parser)."""

import pytest

from repro.dnswire.constants import FLAGS, QTYPE, RCODE
from repro.dnswire.edns import make_opt
from repro.dnswire.message import Message, ResourceRecord
from repro.dnswire.rdata import AAAA, CNAME, NS, RRSIG, SOA, A
from repro.netsim.packet import build_udp_ipv4
from repro.observatory.preprocess import PreprocessError, summarize_transaction


def wrap(msg, src, dst, sport=34567, dport=53, ttl=60):
    return build_udp_ipv4(src, dst, sport, dport, msg.to_wire(), ttl=ttl)


def query_response_pair(qname="www.example.com", qtype=QTYPE.A,
                        rcode=RCODE.NOERROR, answers=(), authority=(),
                        additional=(), aa=True, do=False, msg_id=77):
    query = Message.make_query(qname, qtype, msg_id=msg_id)
    if do:
        query.additional.append(make_opt(dnssec_ok=True))
    response = Message.make_response(query, rcode=rcode, authoritative=aa)
    response.answer.extend(answers)
    response.authority.extend(authority)
    response.additional.extend(additional)
    qpkt = wrap(query, "10.0.0.1", "192.0.2.53")
    rpkt = wrap(response, "192.0.2.53", "10.0.0.1", sport=53, dport=34567,
                ttl=57)
    return qpkt, rpkt


def test_basic_answer():
    qpkt, rpkt = query_response_pair(answers=[
        ResourceRecord("www.example.com", QTYPE.A, 300, A("198.51.100.1")),
    ])
    txn = summarize_transaction(qpkt, rpkt, 100.0, 100.020)
    assert txn.resolver_ip == "10.0.0.1"
    assert txn.server_ip == "192.0.2.53"
    assert txn.qname == "www.example.com"
    assert txn.qtype == QTYPE.A
    assert txn.noerror and txn.aa
    assert txn.answer_count == 1
    assert txn.answer_ttls == (300,)
    assert txn.answer_ips == ("198.51.100.1",)
    assert txn.delay_ms == pytest.approx(20.0, abs=0.5)
    assert txn.observed_ttl == 57
    assert txn.response_size > 0


def test_unanswered_query():
    qpkt, _ = query_response_pair()
    txn = summarize_transaction(qpkt, None, 50.0)
    assert not txn.answered
    assert txn.rcode is None
    assert txn.server_ip == "192.0.2.53"


def test_nxdomain_with_soa():
    qpkt, rpkt = query_response_pair(
        rcode=RCODE.NXDOMAIN,
        authority=[ResourceRecord(
            "example.com", QTYPE.SOA, 300,
            SOA("ns1.example.com", "hostmaster.example.com", minimum=60))],
    )
    txn = summarize_transaction(qpkt, rpkt, 0.0, 0.01)
    assert txn.nxdomain
    # SOA is not an NS record: no delegation counted.
    assert txn.authority_ns_count == 0


def test_delegation_counts_ns():
    qpkt, rpkt = query_response_pair(
        authority=[
            ResourceRecord("example.com", QTYPE.NS, 86400, NS("ns1.example.com")),
            ResourceRecord("example.com", QTYPE.NS, 86400, NS("ns2.example.com")),
        ],
        additional=[
            ResourceRecord("ns1.example.com", QTYPE.A, 86400, A("192.0.2.10")),
        ],
    )
    txn = summarize_transaction(qpkt, rpkt, 0.0, 0.01)
    assert txn.authority_ns_count == 2
    assert txn.ns_ttls == (86400, 86400)
    assert txn.additional_count == 1
    assert txn.has_delegation


def test_cname_chain_extracted():
    qpkt, rpkt = query_response_pair(answers=[
        ResourceRecord("www.example.com", QTYPE.CNAME, 300,
                       CNAME("edge.cdn.example")),
        ResourceRecord("edge.cdn.example", QTYPE.A, 60, A("203.0.113.5")),
    ])
    txn = summarize_transaction(qpkt, rpkt, 0.0, 0.001)
    assert txn.cname_targets == ("edge.cdn.example",)
    assert txn.answer_ips == ("203.0.113.5",)
    assert txn.answer_ttls == (300, 60)


def test_aaaa_answer():
    qpkt, rpkt = query_response_pair(
        qtype=QTYPE.AAAA,
        answers=[ResourceRecord("www.example.com", QTYPE.AAAA, 300,
                                AAAA("2001:db8::5"))],
    )
    txn = summarize_transaction(qpkt, rpkt, 0.0, 0.001)
    assert txn.answer_ips == ("2001:db8::5",)


def test_dnssec_signals():
    qpkt, rpkt = query_response_pair(
        do=True,
        answers=[
            ResourceRecord("www.example.com", QTYPE.A, 300, A("198.51.100.1")),
            ResourceRecord("www.example.com", QTYPE.RRSIG, 300,
                           RRSIG(type_covered=int(QTYPE.A),
                                 signer="example.com")),
        ],
    )
    txn = summarize_transaction(qpkt, rpkt, 0.0, 0.001)
    assert txn.edns_do
    assert txn.has_rrsig
    # RRSIG does not inflate the data counts or TTL list.
    assert txn.answer_count == 1
    assert txn.answer_ttls == (300,)


def test_opt_not_counted_in_additional():
    qpkt, rpkt = query_response_pair(additional=[make_opt()])
    txn = summarize_transaction(qpkt, rpkt, 0.0, 0.001)
    assert txn.additional_count == 0


def test_mismatched_ids_rejected():
    qpkt, _ = query_response_pair(msg_id=1)
    _, rpkt = query_response_pair(msg_id=2)
    with pytest.raises(PreprocessError):
        summarize_transaction(qpkt, rpkt, 0.0, 0.001)


def test_garbage_payload_rejected():
    bad = build_udp_ipv4("10.0.0.1", "192.0.2.53", 1000, 53, b"\x01\x02")
    with pytest.raises(PreprocessError):
        summarize_transaction(bad, None, 0.0)


def test_query_without_question_rejected():
    empty = Message()
    pkt = wrap(empty, "10.0.0.1", "192.0.2.53")
    with pytest.raises(PreprocessError):
        summarize_transaction(pkt, None, 0.0)


def test_negative_delay_clamped():
    qpkt, rpkt = query_response_pair()
    txn = summarize_transaction(qpkt, rpkt, 100.0, 99.0)
    assert txn.delay_ms == 0.0


def test_source_label_propagates():
    qpkt, _ = query_response_pair()
    txn = summarize_transaction(qpkt, None, 0.0, source="sensor-17")
    assert txn.source == "sensor-17"


class TestSummarizeBatch:
    def test_batch_matches_per_record_parsing(self):
        from repro.observatory.preprocess import summarize_batch

        records = []
        for i in range(5):
            qpkt, rpkt = query_response_pair(
                qname="h%d.example.com" % i,
                answers=[ResourceRecord("h%d.example.com" % i, QTYPE.A,
                                        300, A("198.51.100.%d" % (i + 1)))])
            records.append((qpkt, rpkt, 100.0 + i, 100.02 + i))
        txns = summarize_batch(records, source="srcX")
        assert len(txns) == 5
        for i, txn in enumerate(txns):
            expected = summarize_transaction(*records[i], source="srcX")
            assert txn.to_line(exact=True) == expected.to_line(exact=True)

    def test_batch_skips_malformed_and_reports(self):
        from repro.observatory.preprocess import summarize_batch

        good_q, good_r = query_response_pair()
        bad_q = build_udp_ipv4("10.0.0.1", "192.0.2.53", 1234, 53,
                               b"\x00\x01")  # truncated DNS header
        errors = []
        txns = summarize_batch(
            [(good_q, good_r, 1.0, 1.01), (bad_q, None, 2.0)],
            on_error=lambda record, exc: errors.append(exc))
        assert len(txns) == 1 and txns[0].ts == 1.0
        assert len(errors) == 1
        assert isinstance(errors[0], PreprocessError)
