"""Tests for the zero-copy shard transport codecs.

Covers three layers: the per-sketch ``to_buffers``/``from_buffers``
pairs (flat contiguous payloads), the protocol-5 ``__reduce_ex__``
wiring (out-of-band with a buffer callback, in-band without, untouched
below protocol 5), and the batch/state codecs the sharded engine ships
over its queues.
"""

import pickle

import pytest

from repro.observatory.features import FeatureSet
from repro.observatory.transport import (
    BinaryTransport, PickleTransport, decode_batch, encode_batch,
    get_transport, pack_states, unpack_states)
from repro.observatory.window import ShardWindowState
from repro.sketches.histogram import LogHistogram, RunningMean
from repro.sketches.hyperloglog import HyperLogLog
from repro.sketches.reservoir import ReservoirSample
from repro.sketches.topvalues import TopValues
from tests.util import make_txn


def roundtrip_oob(obj):
    """Pickle with protocol-5 out-of-band buffers, like the transport."""
    payload, buffers = pack_states(obj)
    return unpack_states(payload, buffers)


class TestSketchBuffers:
    def test_hll_sparse_roundtrip(self):
        sketch = HyperLogLog(8, seed=5)
        for i in range(10):
            sketch.add("key-%d" % i)
        meta, buffers = sketch.to_buffers()
        assert meta[0] == "hll-sparse"
        assert len(buffers[0]) < sketch.num_registers
        back = HyperLogLog.from_buffers(meta, buffers)
        assert back.to_bytes() == sketch.to_bytes()
        assert (back.precision, back.seed) == (8, 5)

    def test_hll_dense_roundtrip_zero_copy(self):
        sketch = HyperLogLog(8, seed=1)
        for i in range(5000):
            sketch.add(str(i))
        meta, buffers = sketch.to_buffers()
        assert meta[0] == "hll-dense"
        # dense mode exposes the live registers, not a copy
        assert buffers[0] is sketch._registers
        back = HyperLogLog.from_buffers(meta, buffers)
        assert back.to_bytes() == sketch.to_bytes()

    def test_hll_empty_encodes_to_nothing(self):
        meta, buffers = HyperLogLog(10).to_buffers()
        assert meta[0] == "hll-sparse"
        assert len(buffers[0]) == 0

    def test_hll_wide_precision_sparse_pairs(self):
        sketch = HyperLogLog(12, seed=2)  # indexes need two bytes
        for i in range(20):
            sketch.add("x%d" % i)
        meta, buffers = sketch.to_buffers()
        back = HyperLogLog.from_buffers(meta, buffers)
        assert back.to_bytes() == sketch.to_bytes()

    def test_hll_rejects_bad_blob(self):
        meta, buffers = HyperLogLog(8).to_buffers()
        with pytest.raises(ValueError):
            HyperLogLog.from_buffers(("hll-dense", 8, 0), [b"short"])
        with pytest.raises(ValueError):
            HyperLogLog.from_buffers(("hll-wat", 8, 0), buffers)

    def test_loghistogram_roundtrip_exact_base(self):
        hist = LogHistogram(min_value=0.05)
        for value in (0.01, 0.3, 12.5, 12.5, 900.0):
            hist.add(value)
        meta, buffers = hist.to_buffers()
        back = LogHistogram.from_buffers(meta, buffers)
        assert back.base == hist.base  # bit-exact, not via relative_error
        assert back.buckets() == hist.buckets()
        assert back.quartiles() == hist.quartiles()
        assert (back.count, back.mean, back.min, back.max) == \
            (hist.count, hist.mean, hist.min, hist.max)
        hist.merge(back)  # merge accepts the reconstructed parameters

    def test_loghistogram_empty_roundtrip(self):
        back = roundtrip_oob(LogHistogram())
        assert back.count == 0 and back.quartiles() == (0.0, 0.0, 0.0)

    def test_runningmean_roundtrip(self):
        mean = RunningMean()
        mean.add(2.0)
        mean.add(4.0, count=3)
        back = RunningMean.from_buffers(*mean.to_buffers())
        assert (back.count, back.mean) == (mean.count, mean.mean)

    def test_topvalues_int_packs_to_buffer(self):
        top = TopValues(max_values=4)
        for ttl in (300, 300, 60, 86400, 1, 2):  # forces a recycle
            top.add(ttl)
        meta, buffers = top.to_buffers()
        assert meta[0] == "topv-int" and len(buffers) == 1
        back = TopValues.from_buffers(meta, buffers)
        assert back._counts == top._counts
        assert list(back._counts) == list(top._counts)  # insertion order
        assert (back.total, back.replaced) == (top.total, top.replaced)

    def test_topvalues_object_values_fall_back_inband(self):
        top = TopValues()
        top.add("a")
        top.add(1.5)
        meta, buffers = top.to_buffers()
        assert meta[0] == "topv-obj" and buffers == []
        back = TopValues.from_buffers(meta, buffers)
        assert back.distribution() == top.distribution()

    def test_reservoir_roundtrip_preserves_rng(self):
        sample = ReservoirSample(4, seed=7)
        for i in range(100):
            sample.add(i)
        back = roundtrip_oob(sample)
        assert back.items() == sample.items()
        # merging after the roundtrip behaves like the original
        other_a, other_b = ReservoirSample(4, seed=1), ReservoirSample(4, seed=1)
        for i in range(50):
            other_a.add(100 + i)
            other_b.add(100 + i)
        assert sample.merge(other_a).items() == back.merge(other_b).items()


class TestReduceEx:
    @pytest.mark.parametrize("protocol", [2, 4, 5])
    def test_hll_pickles_at_every_protocol(self, protocol):
        sketch = HyperLogLog(8, seed=3)
        for i in range(100):
            sketch.add(str(i))
        back = pickle.loads(pickle.dumps(sketch, protocol))
        assert back.to_bytes() == sketch.to_bytes()

    def test_protocol4_stream_unchanged_by_codec(self):
        """Below protocol 5 the legacy (slot-dict) pickling is used, so
        old payloads and mp queues at the default protocol still work."""
        sketch = HyperLogLog(8)
        assert b"hll-" not in pickle.dumps(sketch, 4)
        assert b"hll-" in pickle.dumps(sketch, 5)

    def test_featureset_oob_roundtrip(self):
        features = FeatureSet()
        for i in range(80):
            features.update(make_txn(
                ts=float(i), qname="q%d.example.com" % (i % 13),
                server_ip="192.0.2.%d" % (i % 7), delay_ms=1.5 * i + 0.1))
        payload, buffers = pack_states(features)
        assert buffers  # register blocks really went out-of-band
        back = unpack_states(payload, buffers)
        assert back.as_row() == features.as_row()
        assert back.srvips.to_bytes() == features.srvips.to_bytes()

    def test_featureset_inband_protocol5_roundtrip(self):
        features = FeatureSet()
        features.update(make_txn())
        back = pickle.loads(pickle.dumps(features, 5))
        assert back.as_row() == features.as_row()

    def test_featureset_merge_after_roundtrip(self):
        a, b = FeatureSet(), FeatureSet()
        for i in range(10):
            a.update(make_txn(ts=float(i), qname="a%d.example.com" % i))
            b.update(make_txn(ts=float(i), qname="b%d.example.com" % i))
        direct = FeatureSet()
        for i in range(10):
            direct.update(make_txn(ts=float(i), qname="a%d.example.com" % i))
        for i in range(10):
            direct.update(make_txn(ts=float(i), qname="b%d.example.com" % i))
        merged = roundtrip_oob(a).merge(roundtrip_oob(b))
        assert merged.hits == direct.hits
        assert merged.qnamesa.to_bytes() == direct.qnamesa.to_bytes()

    def test_shard_window_state_roundtrip(self):
        features = FeatureSet()
        features.update(make_txn())
        state = ShardWindowState(
            "srvip", 60, [("192.0.2.53", 2.5, 0.0, 1.0, 3, features)],
            [("10.0.0.1", 5.0, 0.25)], {"seen": 10, "kept": 8})
        back = roundtrip_oob(state)
        assert back.dataset == "srvip" and back.start_ts == 60
        assert back.inserted == [("10.0.0.1", 5.0, 0.25)]
        assert back.stats == {"seen": 10, "kept": 8}
        key, rate, error, inserted_at, hits, fs = back.entries[0]
        assert (key, rate, error, inserted_at, hits) == \
            ("192.0.2.53", 2.5, 0.0, 1.0, 3)
        assert fs.as_row() == features.as_row()


class TestBatchCodec:
    def test_roundtrip_exact(self):
        txns = [make_txn(ts=0.1 * i + 1e-9, delay_ms=3.7 * i,
                         qname="w%d.example.org" % i) for i in range(50)]
        back = decode_batch(encode_batch(txns))
        assert len(back) == 50
        for original, decoded in zip(txns, back):
            assert decoded.ts == original.ts          # bit-exact floats
            assert decoded.delay_ms == original.delay_ms
            assert decoded.qname == original.qname
            assert decoded.answer_ttls == original.answer_ttls
            assert decoded.answer_ips == original.answer_ips

    def test_empty_batch(self):
        assert encode_batch([]) == b""
        assert decode_batch(b"") == []

    def test_decode_accepts_memoryview(self):
        data = encode_batch([make_txn(ts=1.25)])
        assert decode_batch(memoryview(data))[0].ts == 1.25

    def test_unanswered_and_nxdomain_roundtrip(self):
        from repro.dnswire.constants import RCODE
        txns = [make_txn(ts=1.0, answered=False),
                make_txn(ts=2.0, rcode=RCODE.NXDOMAIN, answer_count=0)]
        back = decode_batch(encode_batch(txns))
        assert back[0].answered is False and back[0].rcode is None
        assert back[1].nxdomain

    def test_encode_batch_into_reuses_buffer(self):
        from repro.observatory.transport import encode_batch_into
        buf = bytearray(b"stale contents from the last batch")
        txns = [make_txn(ts=1.0), make_txn(ts=2.0)]
        out = encode_batch_into(txns, buf)
        assert out is buf  # same object, grown in place
        assert decode_batch(bytes(buf)) and len(decode_batch(bytes(buf))) == 2
        # a following smaller batch must fully replace the contents
        out = encode_batch_into([make_txn(ts=3.0)], buf)
        assert out is buf
        assert len(decode_batch(bytes(buf))) == 1
        assert encode_batch_into([], buf) == b""


class TestTransportInterface:
    def test_get_transport(self):
        assert isinstance(get_transport("pickle"), PickleTransport)
        assert isinstance(get_transport("binary"), BinaryTransport)
        custom = BinaryTransport()
        assert get_transport(custom) is custom
        with pytest.raises(ValueError, match="unknown transport"):
            get_transport("carrier-pigeon")

    def test_ring_transport_flags_and_buffer_handoff(self):
        from repro.observatory.transport import RingTransport
        codec = get_transport("ring")
        assert isinstance(codec, RingTransport)
        assert codec.is_ring is True
        assert get_transport("pickle").is_ring is False
        assert get_transport("binary").is_ring is False
        # ring hands back the reusable buffer itself (the ring copies
        # synchronously); binary snapshots it (queues copy async)
        txns = [make_txn(ts=1.0)]
        assert isinstance(codec.pack_batch(txns), bytearray)
        assert codec.pack_batch(txns) is codec.pack_batch(txns)
        assert isinstance(get_transport("binary").pack_batch(txns), bytes)
        assert codec.unpack_batch(codec.pack_batch(txns))[0].ts == 1.0

    def test_pickle_transport_is_passthrough(self):
        codec = PickleTransport()
        txns = [make_txn()]
        assert codec.unpack_batch(codec.pack_batch(txns)) == txns
        states = ["anything"]
        assert codec.unpack_states(codec.pack_states(states)) == states

    def test_binary_transport_states(self):
        codec = BinaryTransport()
        features = FeatureSet()
        features.update(make_txn())
        state = ShardWindowState("srvip", 0,
                                 [("k", 1.0, 0.0, 0.0, 1, features)],
                                 [], {"seen": 1, "kept": 1})
        packed = codec.pack_states([state])
        payload, buffers = packed
        assert isinstance(payload, bytes)
        back = codec.unpack_states(packed)
        assert back[0].entries[0][5].as_row() == features.as_row()

    def test_binary_states_smaller_than_default_pickle(self):
        """The acceptance criterion's micro version: one merged window
        of shard state must serialize to well under half the default
        pickle bytes (sparse HLL register blocks dominate)."""
        entries = []
        for i in range(20):
            features = FeatureSet()
            for j in range(5):
                features.update(make_txn(
                    ts=float(j), qname="q%d-%d.example.com" % (i, j)))
            entries.append(("key-%d" % i, 1.0, 0.0, 0.0, 5, features))
        state = ShardWindowState("srvip", 0, entries, [],
                                 {"seen": 100, "kept": 100})
        default_bytes = len(pickle.dumps([state]))
        payload, buffers = pack_states([state])
        binary_bytes = len(payload) + sum(len(b) for b in buffers)
        assert binary_bytes * 2 <= default_bytes
