"""Tests for the columnar segment sidecars (storage engine v2)."""

import json
import os
import struct
import threading

import pytest

from repro.observatory import segments as segmentfmt
from repro.observatory.aggregate import TimeAggregator
from repro.observatory.store import SeriesStore
from repro.observatory.tsv import (
    TimeSeriesData,
    read_series,
    read_tsv,
    write_tsv,
)


def make_window(tmp_path, start, dataset="srvip", granularity="minutely",
                rows=None, columns=None):
    rows = rows if rows is not None else [
        ("192.0.2.1", {"hits": 10 + start, "ok": 9, "delay_q50": 12.25}),
        ("192.0.2.2", {"hits": 5, "ok": 5, "delay_q50": 3.5}),
    ]
    data = TimeSeriesData(
        dataset, granularity, start,
        columns=columns or ["hits", "ok", "delay_q50"], rows=rows,
        stats={"seen": 20, "kept": 15})
    return write_tsv(str(tmp_path), data)


def identity(path):
    st = os.stat(path)
    return (st.st_mtime_ns, st.st_size, st.st_ino)


class TestFormat:
    def test_roundtrip_matches_text_parse(self, tmp_path):
        path = make_window(tmp_path, 0)
        seg = segmentfmt.build_segment(path)
        assert seg == path + segmentfmt.SEGMENT_SUFFIX
        want = read_tsv(path)
        got = segmentfmt.read_segment(seg)
        assert got.dataset == want.dataset
        assert got.granularity == want.granularity
        assert got.start_ts == want.start_ts
        assert got.columns == want.columns
        assert got.rows == want.rows
        assert got.stats == want.stats

    def test_empty_window_roundtrips(self, tmp_path):
        path = make_window(tmp_path, 0, rows=[])
        got = segmentfmt.read_segment(segmentfmt.build_segment(path))
        assert got.rows == []
        assert got.stats == {"seen": 20, "kept": 15}

    def test_unique_keys_use_raw_encoding(self, tmp_path):
        path = make_window(tmp_path, 0)
        segmentfmt.build_segment(path)
        with segmentfmt.SegmentReader(path + ".seg") as reader:
            assert reader._key_block["encoding"] == "raw"
            assert reader.keys() == ["192.0.2.1", "192.0.2.2"]

    def test_repeated_keys_dict_encoded(self, tmp_path):
        # Key columns are not necessarily unique across a whole file
        # slice; a repeated tuple must dict-encode and decode back in
        # the original row order.
        rows = [("a", {"hits": 1}), ("b", {"hits": 2}),
                ("a", {"hits": 3}), ("b", {"hits": 4}),
                ("a", {"hits": 5})]
        path = make_window(tmp_path, 0, rows=rows, columns=["hits"])
        segmentfmt.build_segment(path)
        with segmentfmt.SegmentReader(path + ".seg") as reader:
            assert reader._key_block["encoding"] == "dict"
            assert reader._key_block["unique"] == 2
            assert reader.keys() == ["a", "b", "a", "b", "a"]
            assert reader.column("hits") == [1, 2, 3, 4, 5]

    def test_hostile_keys_roundtrip(self, tmp_path):
        keys = ["a\tb", "c\nd", "e\\f", "é☃名", "", "# .x"]
        rows = [(k, {"hits": i}) for i, k in enumerate(keys)]
        path = make_window(tmp_path, 0, rows=rows, columns=["hits"])
        got = segmentfmt.read_segment(segmentfmt.build_segment(path))
        assert [k for k, _ in got.rows] == keys

    def test_column_kinds(self, tmp_path):
        rows = [
            ("a", {"ints": 1, "floats": 1.5, "mixed": 2,
                   "big": 2 ** 70, "text": "x"}),
            ("b", {"ints": -7, "floats": 0.25, "mixed": 2.5,
                   "big": 0, "text": "y"}),
        ]
        path = make_window(
            tmp_path, 0, rows=rows,
            columns=["ints", "floats", "mixed", "big", "text"])
        want = read_tsv(path)
        segmentfmt.build_segment(path)
        with segmentfmt.SegmentReader(path + ".seg") as reader:
            kinds = {name: blk[0]
                     for name, blk in reader._blocks.items()}
            assert kinds["ints"] == segmentfmt.KIND_I64
            assert kinds["floats"] == segmentfmt.KIND_F64
            # mixed int/float, bignum and text all fall back to JSON
            assert kinds["mixed"] == segmentfmt.KIND_JSON
            assert kinds["big"] == segmentfmt.KIND_JSON
            assert kinds["text"] == segmentfmt.KIND_JSON
            # and every value survives with its parsed type intact
            assert reader.to_data().rows == want.rows

    def test_mixed_column_preserves_int_float_distinction(self, tmp_path):
        rows = [("a", {"v": 3}), ("b", {"v": 3.5})]
        path = make_window(tmp_path, 0, rows=rows, columns=["v"])
        segmentfmt.build_segment(path)
        got = segmentfmt.read_segment(path + ".seg")
        values = [row["v"] for _, row in got.rows]
        assert values == [3, 3.5]
        assert [type(v) for v in values] == [int, float]

    def test_key_signature_identifies_ordered_key_tuple(self, tmp_path):
        a = make_window(tmp_path, 0)
        b = make_window(tmp_path, 60)  # same keys, different values
        c = make_window(tmp_path, 120, rows=[
            ("192.0.2.2", {"hits": 1, "ok": 1, "delay_q50": 1.0}),
            ("192.0.2.1", {"hits": 2, "ok": 2, "delay_q50": 2.0}),
        ])  # same keys, different order
        sigs = []
        for path in (a, b, c):
            segmentfmt.build_segment(path)
            with segmentfmt.SegmentReader(path + ".seg") as reader:
                sigs.append(reader.key_signature())
        assert sigs[0] == sigs[1]
        assert sigs[0] != sigs[2]


class TestStaleness:
    def test_fresh_segment_opens(self, tmp_path):
        path = make_window(tmp_path, 0)
        segmentfmt.build_segment(path)
        reader = segmentfmt.open_if_fresh(path, identity(path))
        assert reader is not None
        reader.close()

    def test_rewritten_tsv_makes_segment_stale(self, tmp_path):
        path = make_window(tmp_path, 0)
        segmentfmt.build_segment(path)
        make_window(tmp_path, 0, rows=[
            ("x", {"hits": 1, "ok": 1, "delay_q50": 1.0})])
        os.utime(path, ns=(1, 1))
        assert segmentfmt.open_if_fresh(path, identity(path)) is None

    def test_missing_sidecar_is_none(self, tmp_path):
        path = make_window(tmp_path, 0)
        assert segmentfmt.open_if_fresh(path, identity(path)) is None

    @pytest.mark.parametrize("junk", [
        b"", b"shrt", b"not a segment at all, definitely not",
        segmentfmt.MAGIC + b"\x00" * 40,
    ])
    def test_corrupt_segment_rejected(self, tmp_path, junk):
        path = make_window(tmp_path, 0)
        with open(path + ".seg", "wb") as fh:
            fh.write(junk)
        with pytest.raises(ValueError):
            segmentfmt.SegmentReader(path + ".seg")
        assert segmentfmt.open_if_fresh(path, identity(path)) is None

    def test_future_version_rejected(self, tmp_path):
        path = make_window(tmp_path, 0)
        seg = segmentfmt.build_segment(path)
        with open(seg, "r+b") as fh:
            fh.seek(4)
            fh.write(struct.pack("<H", segmentfmt.VERSION + 1))
        with pytest.raises(ValueError):
            segmentfmt.SegmentReader(seg)


class TestScan:
    def test_scan_segments_maps_tsv_to_sidecar(self, tmp_path):
        a = make_window(tmp_path, 0)
        make_window(tmp_path, 60)
        segmentfmt.build_segment(a)
        (tmp_path / "junk.seg").write_bytes(b"x")  # stem is not a window
        found = segmentfmt.scan_segments(str(tmp_path))
        assert found == {os.path.basename(a): os.path.basename(a) + ".seg"}

    def test_scan_missing_directory_empty(self, tmp_path):
        assert segmentfmt.scan_segments(str(tmp_path / "nope")) == {}

    def test_remove_segment_for(self, tmp_path):
        path = make_window(tmp_path, 0)
        segmentfmt.build_segment(path)
        assert segmentfmt.remove_segment_for(path) is True
        assert not os.path.exists(path + ".seg")
        assert segmentfmt.remove_segment_for(path) is False

    def test_sidecars_invisible_to_store_index(self, tmp_path):
        path = make_window(tmp_path, 0)
        segmentfmt.build_segment(path)
        store = SeriesStore(str(tmp_path), manifest=False)
        assert len(store) == 1  # the .seg never becomes a window ref


class TestStoreIntegration:
    def fill(self, tmp_path, count=6):
        for i in range(count):
            make_window(tmp_path, i * 60)
        TimeAggregator(str(tmp_path)).compact()

    def snapshot(self, series):
        return [(d.start_ts, d.rows, d.stats) for d in series]

    def test_cold_read_prefers_segment(self, tmp_path):
        self.fill(tmp_path)
        store = SeriesStore(str(tmp_path), manifest=False)
        raw = read_series(str(tmp_path), "srvip")
        assert self.snapshot(store.read("srvip")) == self.snapshot(raw)
        assert store.segment_reads == 6
        assert store.parses == 0

    def test_use_segments_false_parses_text(self, tmp_path):
        self.fill(tmp_path)
        store = SeriesStore(str(tmp_path), manifest=False,
                            use_segments=False)
        store.read("srvip")
        assert store.parses == 6
        assert store.segment_reads == 0

    def test_stale_segment_falls_back_to_parse(self, tmp_path):
        path = make_window(tmp_path, 0)
        segmentfmt.build_segment(path)
        make_window(tmp_path, 0, rows=[
            ("fresh", {"hits": 42, "ok": 1, "delay_q50": 1.0})])
        os.utime(path, ns=(1, 1))
        store = SeriesStore(str(tmp_path), manifest=False)
        data = store.read("srvip")[0]
        assert data.rows[0][0] == "fresh"  # never the stale sidecar
        assert store.parses == 1
        assert store.segment_reads == 0

    def test_accumulate_matches_tsv_only_store(self, tmp_path):
        self.fill(tmp_path, count=8)
        seg = SeriesStore(str(tmp_path), cache_windows=0, manifest=False)
        tsv = SeriesStore(str(tmp_path), cache_windows=0, manifest=False,
                          use_segments=False)
        assert seg.accumulate("srvip") == tsv.accumulate("srvip")
        assert seg.topk("srvip", n=5) == tsv.topk("srvip", n=5)
        assert seg.segment_reads == 8 and seg.parses == 0

    def test_accumulate_run_interrupted_by_cached_window(self, tmp_path):
        """A warm LRU window in the middle of a clustered segment run
        must split the run (fold order is window order) without
        changing the answer."""
        self.fill(tmp_path, count=8)
        store = SeriesStore(str(tmp_path), manifest=False)
        middle = store.select("srvip")[4]
        store._read_ref(middle)  # warm exactly one window
        plain = SeriesStore(str(tmp_path), cache_windows=0,
                            manifest=False, use_segments=False)
        assert store.accumulate("srvip") == plain.accumulate("srvip")

    def test_accumulate_mixed_key_tuples_split_runs(self, tmp_path):
        """Windows with varying key tuples (the signature changes
        mid-range) still accumulate identically to a text pass."""
        for i in range(9):
            rows = [("k%d" % (j % (2 + i % 3)),
                     {"hits": i + j, "ok": j, "delay_q50": j + 0.5})
                    for j in range(2 + i % 3)]
            make_window(tmp_path, i * 60, rows=rows)
        TimeAggregator(str(tmp_path)).compact()
        seg = SeriesStore(str(tmp_path), cache_windows=0, manifest=False)
        tsv = SeriesStore(str(tmp_path), cache_windows=0, manifest=False,
                          use_segments=False)
        assert seg.accumulate("srvip") == tsv.accumulate("srvip")
        assert seg.segment_reads == 9

    def test_partial_sidecar_coverage_mixes_paths(self, tmp_path):
        for i in range(4):
            make_window(tmp_path, i * 60)
        segmentfmt.build_segment(
            os.path.join(str(tmp_path), "srvip.minutely.0000000060.tsv"))
        store = SeriesStore(str(tmp_path), cache_windows=0, manifest=False)
        plain = SeriesStore(str(tmp_path), cache_windows=0,
                            manifest=False, use_segments=False)
        assert store.accumulate("srvip") == plain.accumulate("srvip")
        assert store.segment_reads == 1
        assert store.parses == 3


class TestCompact:
    def test_builds_missing_sidecars(self, tmp_path):
        for i in range(3):
            make_window(tmp_path, i * 60)
        report = TimeAggregator(str(tmp_path)).compact()
        assert len(report["built"]) == 3
        assert report["fresh"] == 0
        assert report["removed"] == []
        assert segmentfmt.scan_segments(str(tmp_path))

    def test_idempotent(self, tmp_path):
        make_window(tmp_path, 0)
        agg = TimeAggregator(str(tmp_path))
        agg.compact()
        report = agg.compact()
        assert report["built"] == [] and report["fresh"] == 1

    def test_rebuilds_stale_sidecar(self, tmp_path):
        path = make_window(tmp_path, 0)
        agg = TimeAggregator(str(tmp_path))
        agg.compact()
        make_window(tmp_path, 0, rows=[
            ("new", {"hits": 7, "ok": 7, "delay_q50": 7.0})])
        os.utime(path, ns=(1, 1))
        report = agg.compact()
        assert len(report["built"]) == 1
        got = segmentfmt.read_segment(path + ".seg")
        assert got.rows[0][0] == "new"

    def test_removes_orphan_sidecars(self, tmp_path):
        path = make_window(tmp_path, 0)
        agg = TimeAggregator(str(tmp_path))
        agg.compact()
        os.remove(path)  # retention without the aggregator's help
        report = agg.compact()
        assert report["removed"] == [path + ".seg"]
        assert not os.path.exists(path + ".seg")

    def test_dataset_filter(self, tmp_path):
        make_window(tmp_path, 0, dataset="srvip")
        make_window(tmp_path, 0, dataset="qtype")
        report = TimeAggregator(str(tmp_path)).compact(dataset="qtype")
        assert len(report["built"]) == 1
        assert "qtype" in report["built"][0]

    def test_aggregator_segments_flag_builds_coarse_sidecars(
            self, tmp_path):
        d = str(tmp_path)
        for i in range(10):
            make_window(tmp_path, i * 60)
        agg = TimeAggregator(d, segments=True)
        written = agg.aggregate_directory("srvip")
        assert written  # one complete decaminute
        for path in written:
            assert os.path.exists(path + segmentfmt.SEGMENT_SUFFIX)
            got = segmentfmt.read_segment(path + ".seg")
            assert got.rows == read_tsv(path).rows

    def test_retention_removes_sidecars_too(self, tmp_path):
        d = str(tmp_path)
        for i in range(10):
            make_window(tmp_path, i * 60)
        agg = TimeAggregator(d, retention={"minutely": 100},
                             segments=True)
        agg.aggregate_directory("srvip")
        agg.compact()
        deleted = agg.apply_retention(now_ts=10_000)
        assert len(deleted) == 10
        leftovers = [n for n in os.listdir(d)
                     if n.endswith(".seg") and ".minutely." in n]
        assert leftovers == []


class TestBugfixRegressions:
    def test_retention_survives_concurrent_deletion(self, tmp_path):
        """Regression: a file deleted between the retention scan and
        ``os.remove`` (another aggregator, an operator's rm) used to
        crash ``apply_retention`` mid-sweep, leaving the remaining
        expired files undeleted."""
        d = str(tmp_path)
        for i in range(10):
            make_window(tmp_path, i * 60)
        store = SeriesStore(d, manifest=False)
        agg = TimeAggregator(d, retention={"minutely": 100}, store=store)
        agg.aggregate_directory("srvip")
        victim = os.path.join(d, "srvip.minutely.0000000120.tsv")

        from repro.observatory import aggregate as aggmod
        real_remove = os.remove

        def racy_remove(path, *args, **kwargs):
            if path == victim and os.path.exists(victim):
                real_remove(victim)  # someone else got there first
            return real_remove(path, *args, **kwargs)

        agg.store.read("srvip")  # warm the store so reconcile matters
        try:
            aggmod.os.remove = racy_remove
            deleted = agg.apply_retention(now_ts=10_000)
        finally:
            aggmod.os.remove = real_remove
        # the sweep finished: every expired file is gone, including
        # the ones after the racy victim
        assert len(deleted) == 10
        assert not any(n.endswith(".tsv") and ".minutely." in n
                       for n in os.listdir(d))
        # and the store was reconciled per-file, not via a full rescan
        assert agg.store.select("srvip", "minutely") == []

    def test_manifest_saves_debounced_across_refreshes(self, tmp_path):
        """Regression: every refresh that found changes rewrote the
        whole manifest; a follow-mode store re-scanning per query
        turned each poll into an O(windows) JSON write."""
        make_window(tmp_path, 0)
        store = SeriesStore(str(tmp_path))
        assert store.manifest_saves == 1  # first save is immediate
        for i in range(1, 6):
            make_window(tmp_path, i * 60)
            store.refresh()  # finds changes every time
        assert store.manifest_saves == 1  # debounced
        store.flush_manifest()  # shutdown always persists
        assert store.manifest_saves == 2
        reopened = SeriesStore(str(tmp_path))
        assert len(reopened.select("srvip")) == 6

    def test_cold_reads_single_flight(self, tmp_path):
        """Regression: N threads cold-reading the same window each ran
        their own parse (the lock was released around the disk read),
        multiplying the most expensive operation in the store."""
        path = make_window(tmp_path, 0)
        store = SeriesStore(str(tmp_path), manifest=False)
        from repro.observatory import store as storemod
        real_read = storemod.read_tsv
        started = threading.Event()
        release = threading.Event()

        def slow_read(p):
            started.set()
            assert release.wait(5)
            return real_read(p)

        results = []
        errors = []

        def reader():
            try:
                results.append(store.read_path(path))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        try:
            storemod.read_tsv = slow_read
            leader = threading.Thread(target=reader)
            leader.start()
            assert started.wait(5)  # leader is inside the parse
            # instrument the in-flight event so the test can *know*
            # every follower reached the wait before releasing the
            # leader -- no sleeps, no flakes
            flight = store._inflight[path]
            arrived = threading.Semaphore(0)
            inner = flight.done

            class _CountingEvent:
                def wait(self, timeout=None):
                    arrived.release()
                    return inner.wait(timeout)

                def set(self):
                    inner.set()

            flight.done = _CountingEvent()
            followers = [threading.Thread(target=reader)
                         for _ in range(4)]
            for t in followers:
                t.start()
            for _ in followers:
                assert arrived.acquire(timeout=5)
            release.set()
            leader.join(5)
            for t in followers:
                t.join(5)
        finally:
            storemod.read_tsv = real_read
        assert not errors
        assert len(results) == 5
        assert all(r is results[0] for r in results)  # one shared parse
        assert store.parses == 1
        assert store.flight_waits == 4

    def test_failed_cold_read_propagates_to_waiters(self, tmp_path):
        path = make_window(tmp_path, 0)
        store = SeriesStore(str(tmp_path), manifest=False)
        from repro.observatory import store as storemod
        real_read = storemod.read_tsv
        started = threading.Event()
        release = threading.Event()

        def failing_read(p):
            started.set()
            assert release.wait(5)
            raise OSError("disk on fire")

        outcomes = []

        def reader():
            try:
                store.read_path(path)
                outcomes.append("ok")
            except OSError:
                outcomes.append("oserror")

        try:
            storemod.read_tsv = failing_read
            leader = threading.Thread(target=reader)
            leader.start()
            assert started.wait(5)
            follower = threading.Thread(target=reader)
            follower.start()
            release.set()
            leader.join(5)
            follower.join(5)
        finally:
            storemod.read_tsv = real_read
        assert outcomes == ["oserror", "oserror"]
        # the failed flight is gone: the next read starts fresh
        assert store._inflight == {}
        assert len(store.read_path(path).rows) == 2
