"""Tests for the TSV time-series file format."""

import pytest

from repro.observatory.tsv import (
    GRANULARITIES,
    TimeSeriesData,
    escape_key,
    filename_for,
    list_series,
    parse_filename,
    read_series,
    read_tsv,
    unescape_key,
    write_tsv,
)


def sample_data(start=60, dataset="srvip", granularity="minutely"):
    rows = [
        ("192.0.2.1", {"hits": 100, "ok": 90, "delay_q50": 12.5}),
        ("192.0.2.2", {"hits": 50, "ok": 40, "delay_q50": 30.0}),
    ]
    return TimeSeriesData(dataset, granularity, start,
                          columns=["hits", "ok", "delay_q50"],
                          rows=rows, stats={"seen": 200, "kept": 150})


class TestFilenames:
    def test_roundtrip(self):
        name = filename_for("srvip", "minutely", 86400)
        assert parse_filename(name) == ("srvip", "minutely", 86400)

    def test_encodes_granularity_and_time(self):
        assert filename_for("qname", "hourly", 3600) == \
            "qname.hourly.0000003600.tsv"

    def test_dataset_with_dot(self):
        name = filename_for("srvip.v6", "daily", 0)
        assert parse_filename(name) == ("srvip.v6", "daily", 0)

    def test_rejects_bad_granularity(self):
        with pytest.raises(ValueError):
            filename_for("srvip", "weekly", 0)

    def test_rejects_unparseable(self):
        with pytest.raises(ValueError):
            parse_filename("notaseries.txt")
        with pytest.raises(ValueError):
            parse_filename("x.weekly.000.tsv")


class TestReadWrite:
    def test_roundtrip(self, tmp_path):
        data = sample_data()
        path = write_tsv(str(tmp_path), data)
        back = read_tsv(path)
        assert back.dataset == "srvip"
        assert back.granularity == "minutely"
        assert back.start_ts == 60
        assert back.columns == data.columns
        assert back.rows[0][0] == "192.0.2.1"
        assert back.rows[0][1]["hits"] == 100
        assert back.rows[0][1]["delay_q50"] == 12.5
        assert back.stats == {"seen": 200, "kept": 150}

    def test_header_and_stats_rows(self, tmp_path):
        path = write_tsv(str(tmp_path), sample_data())
        lines = open(path).read().splitlines()
        assert lines[0].startswith("key\t")
        assert lines[-1].startswith("#stats")

    def test_rank_order_preserved(self, tmp_path):
        path = write_tsv(str(tmp_path), sample_data())
        back = read_tsv(path)
        assert [k for k, _ in back.rows] == ["192.0.2.1", "192.0.2.2"]

    def test_missing_column_written_as_zero(self, tmp_path):
        data = TimeSeriesData("x", "minutely", 0, columns=["hits", "ok"],
                              rows=[("k", {"hits": 3})])
        back = read_tsv(write_tsv(str(tmp_path), data))
        assert back.rows[0][1]["ok"] == 0

    def test_row_map(self):
        assert sample_data().row_map()["192.0.2.2"]["hits"] == 50

    def test_len(self):
        assert len(sample_data()) == 2


class TestHostileKeys:
    """A qname key may contain tabs/newlines (legal in DNS wire format
    and attacker-controlled); unescaped it would corrupt its own row
    and every row after it."""

    HOSTILE = "evil\tname.\nexample\\com\r."

    def test_escape_unescape_roundtrip(self):
        for key in (self.HOSTILE, "plain.example.com", "trailing\\",
                    "\t", "\n\n", "a\\tb"):
            assert unescape_key(escape_key(key)) == key

    def test_escaped_key_is_single_field_single_line(self):
        escaped = escape_key(self.HOSTILE)
        assert "\t" not in escaped and "\n" not in escaped \
            and "\r" not in escaped

    def test_plain_keys_unchanged(self):
        assert escape_key("ns1.example.com") == "ns1.example.com"
        assert unescape_key("ns1.example.com") == "ns1.example.com"

    def test_hostile_qname_file_roundtrip(self, tmp_path):
        data = TimeSeriesData(
            "qname", "minutely", 0, columns=["hits", "ok"],
            rows=[(self.HOSTILE, {"hits": 7, "ok": 6}),
                  ("after.example.com", {"hits": 3, "ok": 2})],
            stats={"seen": 10, "kept": 10})
        back = read_tsv(write_tsv(str(tmp_path), data))
        assert [key for key, _ in back.rows] == \
            [self.HOSTILE, "after.example.com"]
        assert back.rows[0][1] == {"hits": 7, "ok": 6}
        assert back.rows[1][1] == {"hits": 3, "ok": 2}
        assert back.stats == {"seen": 10, "kept": 10}


class TestStrictReads:
    def test_short_row_raises_with_line_number(self, tmp_path):
        path = write_tsv(str(tmp_path), sample_data())
        lines = open(path).read().splitlines()
        lines[2] = "short.example.com\t1"  # drops 2 of 3 columns
        with open(path, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="line 3.*expected 4.*got 2"):
            read_tsv(path)

    def test_long_row_raises(self, tmp_path):
        path = write_tsv(str(tmp_path), sample_data())
        with open(path, "a") as fh:
            fh.write("long.example.com\t1\t2\t3\t4\n")
        with pytest.raises(ValueError, match="expected 4.*got 5"):
            read_tsv(path)

    def test_empty_field_parses_as_zero(self, tmp_path):
        path = write_tsv(str(tmp_path), sample_data())
        lines = open(path).read().splitlines()
        lines[1] = "192.0.2.1\t100\t\t12.5"  # empty "ok" column
        with open(path, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        back = read_tsv(path)
        assert back.rows[0][1]["ok"] == 0
        assert back.rows[0][1]["hits"] == 100


class TestListSeries:
    def test_sorted_and_filtered(self, tmp_path):
        for start in (120, 60):
            write_tsv(str(tmp_path), sample_data(start=start))
        write_tsv(str(tmp_path), sample_data(start=0, dataset="qname"))
        (tmp_path / "junk.txt").write_text("ignore me")
        all_series = list_series(str(tmp_path))
        assert len(all_series) == 3
        srvip = list_series(str(tmp_path), dataset="srvip")
        assert [s[3] for s in srvip] == [60, 120]
        assert list_series(str(tmp_path), granularity="hourly") == []

    def test_missing_directory(self):
        assert list_series("/nonexistent/path") == []

    def test_time_range_filter(self, tmp_path):
        for start in (0, 60, 120, 180):
            write_tsv(str(tmp_path), sample_data(start=start))
        starts = lambda **kw: [s[3] for s in  # noqa: E731
                               list_series(str(tmp_path), "srvip",
                                           "minutely", **kw)]
        assert starts(start_ts=60) == [60, 120, 180]
        assert starts(end_ts=120) == [0, 60]
        assert starts(start_ts=60, end_ts=180) == [60, 120]
        # Overlap semantics: a window straddling the range start is in.
        assert starts(start_ts=90, end_ts=121) == [60, 120]
        assert starts(start_ts=1000) == []

    def test_time_range_respects_granularity_length(self, tmp_path):
        write_tsv(str(tmp_path),
                  sample_data(start=0, granularity="hourly"))
        # The hourly window [0, 3600) overlaps a range starting at 1800.
        assert list_series(str(tmp_path), "srvip", "hourly",
                           start_ts=1800)
        assert list_series(str(tmp_path), "srvip", "hourly",
                           start_ts=3600) == []


class TestRangeReadSeries:
    def test_default_reads_everything(self, tmp_path):
        for start in (0, 60, 120):
            write_tsv(str(tmp_path), sample_data(start=start))
        assert [s.start_ts for s in read_series(str(tmp_path), "srvip")] \
            == [0, 60, 120]

    def test_range_skips_out_of_window_files(self, tmp_path):
        for start in (0, 60, 120, 180):
            write_tsv(str(tmp_path), sample_data(start=start))
        loaded = read_series(str(tmp_path), "srvip",
                             start_ts=60, end_ts=180)
        assert [s.start_ts for s in loaded] == [60, 120]

    def test_range_filter_never_opens_excluded_files(self, tmp_path):
        write_tsv(str(tmp_path), sample_data(start=0))
        # A corrupt out-of-range file must not be touched by the query.
        bad = tmp_path / "srvip.minutely.0000864000.tsv"
        bad.write_text("not\ta\tseries\n")
        loaded = read_series(str(tmp_path), "srvip", end_ts=60)
        assert [s.start_ts for s in loaded] == [0]


class TestAtomicWrites:
    def test_final_path_only_appears_via_replace(self, tmp_path,
                                                 monkeypatch):
        import os
        observed = {}
        real_replace = os.replace

        def checked_replace(src, dst):
            observed["src"] = src
            observed["final_missing_before_replace"] = \
                not os.path.exists(dst)
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", checked_replace)
        path = write_tsv(str(tmp_path), sample_data())
        assert observed["final_missing_before_replace"]
        assert observed["src"].startswith(path + ".tmp.")
        assert read_tsv(path).stats == {"seen": 200, "kept": 150}
        # No stranded temporaries.
        assert sorted(p.name for p in tmp_path.iterdir()) == \
            [os.path.basename(path)]

    def test_failed_write_leaves_directory_clean(self, tmp_path,
                                                 monkeypatch):
        import os

        def broken_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", broken_replace)
        with pytest.raises(OSError):
            write_tsv(str(tmp_path), sample_data())
        monkeypatch.undo()
        assert list(tmp_path.iterdir()) == []

    def test_reader_while_writer_never_sees_torn_window(self, tmp_path):
        """Regression: a reader polling the directory while a writer
        rewrites windows must only ever parse complete files (the old
        direct-to-final-path writer let ``read_tsv`` observe a header
        with half the rows and no ``#stats`` line)."""
        import threading

        # Big enough that a non-atomic write spans several buffer
        # flushes, giving the reader a real window to catch a torn file.
        rows = [("key-%05d" % i, {"hits": i, "ok": i, "delay_q50": 0.5})
                for i in range(4000)]
        errors = []
        done = threading.Event()

        def writer():
            try:
                for round_no in range(12):
                    data = TimeSeriesData(
                        "srvip", "minutely", 60, columns=rows[0][1].keys(),
                        rows=rows, stats={"seen": round_no, "kept": round_no})
                    write_tsv(str(tmp_path), data)
            finally:
                done.set()

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            while not done.is_set():
                for _, _, _, _ in list_series(str(tmp_path), "srvip"):
                    pass
                for path, _, _, _ in list_series(str(tmp_path), "srvip"):
                    try:
                        data = read_tsv(path)
                    except FileNotFoundError:
                        continue  # listed before a replace, gone after
                    if len(data.rows) != len(rows) or "seen" not in data.stats:
                        errors.append("torn read: %d rows, stats %r"
                                      % (len(data.rows), data.stats))
        finally:
            thread.join()
        assert not errors, errors[:3]


def test_granularity_chain_consistent():
    assert GRANULARITIES["decaminutely"] == 10 * GRANULARITIES["minutely"]
    assert GRANULARITIES["hourly"] == 6 * GRANULARITIES["decaminutely"]
    assert GRANULARITIES["daily"] == 24 * GRANULARITIES["hourly"]
