"""Tests for dataset key extractors."""

import pytest

from repro.dnswire.constants import QTYPE
from repro.observatory.keys import (
    DATASETS,
    key_esld,
    key_etld,
    key_qtype,
    key_rcode,
    key_srcsrv,
    key_srvip,
    make_dataset,
)
from tests.util import make_nxdomain, make_txn


def test_registry_covers_paper_datasets():
    assert set(DATASETS) == {
        "srvip", "etld", "esld", "qname", "qtype", "rcode",
        "aafqdn", "srcsrv",
    }


def test_srvip_key():
    assert key_srvip(make_txn(server_ip="192.0.2.9")) == "192.0.2.9"


def test_etld_key_includes_nxdomain():
    # §3.1: "note that we include NXDOMAIN traffic".
    txn = make_nxdomain(qname="dga123.nonexistent.com")
    assert key_etld(txn) == "com"
    assert DATASETS["etld"].extract(txn) == "com"


def test_esld_key():
    assert key_esld(make_txn(qname="www.bbc.co.uk")) == "bbc.co.uk"
    # A bare public suffix keeps its traffic under the suffix itself.
    assert key_esld(make_txn(qname="co.uk")) == "co.uk"


def test_qname_key_root():
    assert DATASETS["qname"].extract(make_txn(qname=".")) == "."


def test_qtype_key():
    assert key_qtype(make_txn(qtype=QTYPE.AAAA)) == "AAAA"


def test_rcode_key():
    assert key_rcode(make_txn()) == "NOERROR"
    assert key_rcode(make_nxdomain()) == "NXDOMAIN"
    assert key_rcode(make_txn(answered=False)) == "UNANSWERED"


def test_srcsrv_key():
    txn = make_txn(resolver_ip="10.1.1.1", server_ip="192.0.2.2")
    assert key_srcsrv(txn) == "10.1.1.1|192.0.2.2"


def test_aafqdn_filter():
    spec = DATASETS["aafqdn"]
    assert spec.extract(make_txn(aa=True)) == "www.example.com|A"
    assert spec.extract(make_txn(aa=False)) is None
    # NoData authoritative answers are excluded (no data, no NS).
    assert spec.extract(make_txn(aa=True, answer_count=0,
                                 answer_ttls=(), answer_ips=())) is None
    # NXDOMAIN excluded even with AA.
    assert spec.extract(make_nxdomain(aa=True)) is None


def test_make_dataset_resizes():
    spec = make_dataset("srvip", k=77)
    assert spec.k == 77
    assert spec.name == "srvip"
    assert DATASETS["srvip"].k != 77 or True  # original untouched
    assert DATASETS["srvip"] is not spec


def test_make_dataset_default_k():
    assert make_dataset("qtype").k == DATASETS["qtype"].k


def test_spec_repr():
    assert "srvip" in repr(DATASETS["srvip"])


def test_unknown_dataset():
    with pytest.raises(KeyError):
        make_dataset("nope")


class TestBatchExtraction:
    """make_batch_extractor must agree with the scalar extractor for
    every dataset shape (memoized, filtered, plain), and the memoized
    path must intern its keys (one string object served to every
    Space-Saving cache across millions of lookups)."""

    def _txns(self):
        return [
            make_txn(qname="www.example.com"),
            make_txn(qname="mail.example.co.uk"),
            make_txn(qname="www.example.com"),       # memo hit
            make_txn(aa=False),                       # aafqdn-filtered
            make_nxdomain(),
            make_txn(answered=False),
        ]

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_matches_scalar_extractor(self, name):
        spec = DATASETS[name]
        scalar = spec.make_extractor()
        batch = spec.make_batch_extractor()
        txns = self._txns()
        assert batch(txns) == [scalar(txn) for txn in txns]

    def test_memoized_keys_are_interned(self):
        spec = DATASETS["esld"]
        batch = spec.make_batch_extractor()
        # distinct qname strings with equal eSLDs must yield the same
        # interned key object
        a = make_txn(qname="a.long.sub.example.com")
        b = make_txn(qname="b.other.sub.example.com")
        keys = batch([a, b])
        assert keys[0] == keys[1] == "example.com"
        assert keys[0] is keys[1]

    def test_memo_bound_clears_wholesale(self):
        spec = DATASETS["esld"]
        batch = spec.make_batch_extractor(cache_limit=4)
        txns = [make_txn(qname="h%d.example%d.org" % (i, i))
                for i in range(10)]
        assert batch(txns) == ["example%d.org" % i for i in range(10)]
        # and a rerun (through the cleared/refilled memo) still agrees
        assert batch(txns) == ["example%d.org" % i for i in range(10)]

    def test_filtered_dataset_yields_nones(self):
        spec = DATASETS["aafqdn"]
        batch = spec.make_batch_extractor()
        keys = batch([make_txn(aa=True), make_txn(aa=False)])
        assert keys[0] == "www.example.com|A"
        assert keys[1] is None
