"""Tests for the transaction summary record."""

import pytest

from repro.dnswire.constants import QTYPE, RCODE
from repro.observatory.transaction import Transaction
from tests.util import make_nodata, make_nxdomain, make_txn


class TestDerivedViews:
    def test_noerror_with_data(self):
        txn = make_txn()
        assert txn.noerror
        assert txn.has_answer_data
        assert not txn.nodata
        assert not txn.nxdomain

    def test_nodata(self):
        txn = make_nodata()
        assert txn.noerror
        assert txn.nodata
        assert not txn.has_answer_data
        assert not txn.has_delegation

    def test_delegation_is_not_nodata(self):
        txn = make_txn(answer_count=0, authority_ns_count=2,
                       answer_ttls=(), answer_ips=(), ns_ttls=(86400, 86400))
        assert txn.has_delegation
        assert not txn.nodata

    def test_nxdomain(self):
        txn = make_nxdomain()
        assert txn.nxdomain
        assert not txn.noerror

    def test_refused_servfail(self):
        assert make_txn(rcode=RCODE.REFUSED, answer_count=0).refused
        assert make_txn(rcode=RCODE.SERVFAIL, answer_count=0).servfail

    def test_unanswered(self):
        txn = make_txn(answered=False)
        assert not txn.answered
        assert txn.rcode is None
        assert not txn.noerror
        assert not txn.nxdomain

    def test_qdots(self):
        assert make_txn(qname="www.example.com").qdots == 3
        assert make_txn(qname="com").qdots == 1

    def test_qtype_name(self):
        assert make_txn(qtype=QTYPE.AAAA).qtype_name() == "AAAA"
        assert make_txn(qtype=65280).qtype_name() == "TYPE65280"

    def test_qname_normalized(self):
        assert make_txn(qname="WWW.Example.COM.").qname == "www.example.com"


class TestLineSerialization:
    def test_roundtrip_full(self):
        txn = make_txn(
            ts=1234.5, qname="cdn.example.org", qtype=QTYPE.AAAA,
            aa=True, edns_do=True, has_rrsig=True, delay_ms=12.345,
            answer_ttls=(300, 60), ns_ttls=(86400,),
            answer_ips=("2001:db8::1",), cname_targets=("edge.example.net",),
            authority_ns_count=2, additional_count=1,
        )
        back = Transaction.from_line(txn.to_line())
        for attr in Transaction.__slots__:
            assert getattr(back, attr) == getattr(txn, attr), attr

    def test_roundtrip_unanswered(self):
        txn = make_txn(answered=False)
        back = Transaction.from_line(txn.to_line())
        assert not back.answered
        assert back.rcode is None

    def test_roundtrip_root_qname(self):
        txn = make_txn(qname=".", answer_count=0, answer_ttls=(),
                       answer_ips=())
        back = Transaction.from_line(txn.to_line())
        assert back.qname == ""

    def test_rejects_malformed_line(self):
        with pytest.raises(ValueError):
            Transaction.from_line("only\ttwo")

    def test_line_is_single_line(self):
        assert "\n" not in make_txn().to_line()

    def test_repr_mentions_status(self):
        assert "NXDOMAIN" in repr(make_nxdomain())
        assert "UNANSWERED" in repr(make_txn(answered=False))
