"""Tests for the §2.3 feature set."""

import pytest

from repro.dnswire.constants import QTYPE, RCODE
from repro.observatory.features import ALL_COLUMNS, COUNTER_COLUMNS, FeatureSet
from tests.util import make_nodata, make_nxdomain, make_txn


@pytest.fixture()
def fs():
    return FeatureSet(hll_precision=10)


class TestCounters:
    def test_hits_and_ok(self, fs):
        fs.update(make_txn())
        fs.update(make_txn())
        assert fs.hits == 2
        assert fs.ok == 2
        assert fs.ok_ans == 2

    def test_unanswered(self, fs):
        fs.update(make_txn(answered=False))
        assert fs.unans == 1
        assert fs.ok == 0

    def test_rcode_counters(self, fs):
        fs.update(make_nxdomain())
        fs.update(make_txn(rcode=RCODE.REFUSED, answer_count=0))
        fs.update(make_txn(rcode=RCODE.SERVFAIL, answer_count=0))
        assert (fs.nxd, fs.rfs, fs.fail) == (1, 1, 1)

    def test_nodata_vs_delegation(self, fs):
        fs.update(make_nodata())
        fs.update(make_txn(answer_count=0, authority_ns_count=2,
                           answer_ttls=(), answer_ips=(),
                           ns_ttls=(3600, 3600)))
        assert fs.ok_nil == 1
        assert fs.ok_ns == 1

    def test_aaaa_counters(self, fs):
        fs.update(make_txn(qtype=QTYPE.AAAA, answer_ips=("2001:db8::1",)))
        fs.update(make_nodata(qtype=QTYPE.AAAA))
        assert fs.ok6 == 2
        assert fs.ok6nil == 1

    def test_ok_sec_requires_do_rrsig_and_data(self, fs):
        fs.update(make_txn(edns_do=True, has_rrsig=True))
        fs.update(make_txn(edns_do=True, has_rrsig=False))
        fs.update(make_txn(edns_do=False, has_rrsig=True))
        fs.update(make_nodata(edns_do=True, has_rrsig=True))
        assert fs.ok_sec == 1

    def test_ok_add(self, fs):
        fs.update(make_txn(additional_count=2))
        fs.update(make_txn(additional_count=0))
        assert fs.ok_add == 1


class TestCardinalities:
    def test_qnames_existing_vs_all(self, fs):
        fs.update(make_txn(qname="a.example.com"))
        fs.update(make_nxdomain(qname="b.example.com"))
        # qnamesa counts all, qnames only NoError names.
        assert round(fs.qnamesa.cardinality()) == 2
        assert round(fs.qnames.cardinality()) == 1

    def test_tlds_eslds_from_noerror(self, fs):
        fs.update(make_txn(qname="www.example.com"))
        fs.update(make_txn(qname="www.bbc.co.uk"))
        fs.update(make_nxdomain(qname="x.invalid-tld.zz"))
        assert round(fs.tlds.cardinality()) == 2  # com, co.uk
        assert round(fs.eslds.cardinality()) == 2  # example.com, bbc.co.uk

    def test_ip4s_ip6s_split(self, fs):
        fs.update(make_txn(answer_ips=("198.51.100.1", "198.51.100.2")))
        fs.update(make_txn(qtype=QTYPE.AAAA, answer_ips=("2001:db8::1",)))
        assert round(fs.ip4s.cardinality()) == 2
        assert round(fs.ip6s.cardinality()) == 1

    def test_ips_only_for_address_queries(self, fs):
        fs.update(make_txn(qtype=QTYPE.TXT, answer_ips=("198.51.100.1",)))
        assert round(fs.ip4s.cardinality()) == 0

    def test_sources_and_resolvers(self, fs):
        fs.update(make_txn(resolver_ip="10.0.0.1", source="s1"))
        fs.update(make_txn(resolver_ip="10.0.0.2", source="s2"))
        fs.update(make_txn(resolver_ip="10.0.0.2", source="s2"))
        assert fs.sources == 2
        assert round(fs.srcips.cardinality()) == 2

    def test_qtypes_exact(self, fs):
        for qtype in (QTYPE.A, QTYPE.AAAA, QTYPE.MX, QTYPE.A):
            fs.update(make_txn(qtype=qtype))
        assert fs.qtypes == 3


class TestAveragesAndDistributions:
    def test_qdots_mean(self, fs):
        fs.update(make_txn(qname="a.b.c"))       # 3 labels
        fs.update(make_txn(qname="example.com"))  # 2 labels
        assert fs.qdots.mean == pytest.approx(2.5)

    def test_ttl_top(self, fs):
        for _ in range(5):
            fs.update(make_txn(answer_ttls=(300,)))
        fs.update(make_txn(answer_ttls=(60,)))
        assert fs.ttl.top_value() == 300

    def test_nsttl(self, fs):
        fs.update(make_txn(authority_ns_count=2, ns_ttls=(86400, 86400)))
        assert fs.nsttl.top_value() == 86400

    def test_delay_quartiles(self, fs):
        for delay in (10.0, 20.0, 30.0, 40.0, 50.0):
            fs.update(make_txn(delay_ms=delay))
        q25, q50, q75 = fs.resp_delays.quartiles()
        assert q25 <= q50 <= q75
        assert 15 < q50 < 45

    def test_hops_from_observed_ttl(self, fs):
        fs.update(make_txn(observed_ttl=57))  # 64 - 57 = 7 hops
        assert fs.network_hops.mean == pytest.approx(7.0)


class TestRowAndClear:
    def test_row_covers_all_columns(self, fs):
        fs.update(make_txn())
        row = fs.as_row()
        assert set(row) == set(ALL_COLUMNS)

    def test_row_values_sane(self, fs):
        for i in range(10):
            fs.update(make_txn(ts=i, delay_ms=10 + i))
        row = fs.as_row()
        assert row["hits"] == 10
        assert row["ok"] == 10
        assert row["ttl_top1"] == 300
        assert row["ttl_top1_share"] == pytest.approx(1.0)
        assert row["delay_q25"] <= row["delay_q50"] <= row["delay_q75"]

    def test_clear_resets_everything(self, fs):
        fs.update(make_txn())
        fs.clear()
        row = fs.as_row()
        for col in COUNTER_COLUMNS:
            assert row[col] == 0
        assert row["qnamesa"] == 0
        assert row["ttl_top1"] == 0

    def test_empty_row(self, fs):
        row = fs.as_row()
        assert row["hits"] == 0
        assert row["delay_q50"] == 0
