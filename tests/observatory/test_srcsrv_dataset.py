"""Tests for the srcsrv (resolver, nameserver)-pair dataset.

§3.1: "Top-30K pairs of resolvers and nameservers ... transactions
aggregated using the combined IP addresses as key" -- the dataset the
qmin study (§3.6) draws its per-pair query behaviour from.
"""

from repro.observatory.pipeline import Observatory
from tests.util import make_txn


def test_pairs_tracked_independently():
    obs = Observatory(datasets=[("srcsrv", 64)], use_bloom_gate=False,
                      skip_recent_inserts=False)
    for i in range(10):
        obs.ingest(make_txn(ts=float(i), resolver_ip="10.0.0.1",
                            server_ip="192.0.2.1"))
    for i in range(5):
        obs.ingest(make_txn(ts=10.0 + i, resolver_ip="10.0.0.2",
                            server_ip="192.0.2.1"))
    obs.finish()
    top = obs.tracker("srcsrv").top()
    assert top[0].key == "10.0.0.1|192.0.2.1"
    assert top[0].hits == 10
    assert top[1].key == "10.0.0.2|192.0.2.1"


def test_pair_features_are_per_pair():
    obs = Observatory(datasets=[("srcsrv", 64)], use_bloom_gate=False,
                      skip_recent_inserts=False)
    obs.ingest(make_txn(ts=0.0, resolver_ip="10.0.0.1",
                        server_ip="192.0.2.1", qname="a.example.com"))
    obs.ingest(make_txn(ts=1.0, resolver_ip="10.0.0.2",
                        server_ip="192.0.2.1", qname="b.example.com"))
    obs.finish()
    dump = obs.dumps["srcsrv"][-1]
    rows = dump.row_map()
    assert round(rows["10.0.0.1|192.0.2.1"]["qnamesa"]) == 1
    assert round(rows["10.0.0.2|192.0.2.1"]["qnamesa"]) == 1


def test_srcsrv_in_simulation():
    from repro.simulation import Scenario, SieChannel

    channel = SieChannel(Scenario.tiny(seed=55, duration=120.0,
                                       client_qps=30.0))
    obs = Observatory(datasets=[("srcsrv", 500)], use_bloom_gate=False)
    obs.consume(channel.run())
    obs.finish()
    top = obs.tracker("srcsrv").top(20)
    assert top
    resolver_addrs = {r.ip for r in channel.resolvers} | {
        r.ipv6_addr for r in channel.resolvers if r.ipv6_addr}
    for entry in top:
        resolver_ip, server_ip = entry.key.split("|")
        assert resolver_ip in resolver_addrs
        assert server_ip in channel.dns.topology.nameservers_by_ip
