"""Tests for time aggregation and retention (§2.4)."""

import os

import pytest

from repro.observatory.aggregate import TimeAggregator, aggregate_series
from repro.observatory.tsv import TimeSeriesData, list_series, read_tsv, write_tsv


def series(start, rows, granularity="minutely", dataset="srvip"):
    return TimeSeriesData(dataset, granularity, start,
                          columns=["hits", "ok", "delay_q50"],
                          rows=rows, stats={"seen": 10, "kept": 8})


class TestAggregateSeries:
    def test_counter_mean_with_missing_as_zero(self):
        a = series(0, [("k1", {"hits": 10, "ok": 10, "delay_q50": 20.0})])
        b = series(60, [("k1", {"hits": 20, "ok": 20, "delay_q50": 40.0}),
                        ("k2", {"hits": 6, "ok": 6, "delay_q50": 5.0})])
        agg = aggregate_series([a, b], "srvip", "decaminutely", 0,
                               expected_points=2)
        rmap = agg.row_map()
        # Counter: mean over expected points, missing -> 0.
        assert rmap["k1"]["hits"] == pytest.approx(15.0)
        assert rmap["k2"]["hits"] == pytest.approx(3.0)
        # Gauge: mean over *present* points only.
        assert rmap["k1"]["delay_q50"] == pytest.approx(30.0)
        assert rmap["k2"]["delay_q50"] == pytest.approx(5.0)

    def test_expected_points_beyond_files(self):
        # An object present in 1 of 10 minutely windows averages to 1/10.
        a = series(0, [("k1", {"hits": 10, "ok": 10, "delay_q50": 1.0})])
        agg = aggregate_series([a], "srvip", "decaminutely", 0,
                               expected_points=10)
        assert agg.row_map()["k1"]["hits"] == pytest.approx(1.0)
        assert agg.row_map()["k1"]["delay_q50"] == pytest.approx(1.0)

    def test_rows_sorted_by_hits(self):
        a = series(0, [("small", {"hits": 1, "ok": 1, "delay_q50": 1}),
                       ("big", {"hits": 100, "ok": 90, "delay_q50": 1})])
        agg = aggregate_series([a], "srvip", "decaminutely", 0)
        assert [k for k, _ in agg.rows] == ["big", "small"]

    def test_stats_summed(self):
        agg = aggregate_series([series(0, []), series(60, [])],
                               "srvip", "decaminutely", 0)
        assert agg.stats["seen"] == 20
        assert agg.stats["points"] == 2

    def test_rejects_zero_points(self):
        with pytest.raises(ValueError):
            aggregate_series([], "srvip", "decaminutely", 0)

    def test_schema_drift_unions_columns(self):
        """Regression: the coarse header was copied from the *first*
        input file, so columns introduced mid-window (e.g. a
        ``_platform`` file gaining gate columns once the Bloom gate
        engages) silently vanished from every coarser granularity."""
        a = TimeSeriesData("_platform", "minutely", 0,
                           columns=["txns", "rows"],
                           rows=[("window", {"txns": 10, "rows": 2})],
                           stats={"seen": 10, "kept": 1})
        b = TimeSeriesData("_platform", "minutely", 60,
                           columns=["txns", "rows", "gate_fill"],
                           rows=[("window", {"txns": 20, "rows": 4,
                                             "gate_fill": 0.5})],
                           stats={"seen": 20, "kept": 1})
        agg = aggregate_series([a, b], "_platform", "decaminutely", 0,
                               expected_points=2)
        # Union preserves first-seen order; late columns survive.
        assert agg.columns == ["txns", "rows", "gate_fill"]
        row = agg.row_map()["window"]
        # Non-counter column: mean over present points only.
        assert row["gate_fill"] == pytest.approx(0.5)
        assert row["txns"] == pytest.approx(15.0)


class TestTimeAggregator:
    def fill_minutely(self, directory, count=20, dataset="srvip"):
        for i in range(count):
            write_tsv(directory, series(
                i * 60, [("k1", {"hits": i, "ok": i, "delay_q50": 10.0})],
                dataset=dataset))

    def test_aggregates_complete_windows_only(self, tmp_path):
        d = str(tmp_path)
        self.fill_minutely(d, count=20)  # covers [0, 1200): 2 decaminutes
        agg = TimeAggregator(d)
        written = agg.aggregate_directory("srvip")
        deca = list_series(d, "srvip", "decaminutely")
        assert [s[3] for s in deca] == [0, 600]
        assert all(os.path.exists(p) for p in written)

    def test_aggregation_is_idempotent(self, tmp_path):
        d = str(tmp_path)
        self.fill_minutely(d, count=20)
        agg = TimeAggregator(d)
        first = agg.aggregate_directory("srvip")
        second = agg.aggregate_directory("srvip")
        assert first and not second

    def test_decaminutely_values(self, tmp_path):
        d = str(tmp_path)
        self.fill_minutely(d, count=20)
        TimeAggregator(d).aggregate_directory("srvip")
        path = list_series(d, "srvip", "decaminutely")[0][0]
        data = read_tsv(path)
        # hits 0..9 over 10 windows -> mean 4.5.
        assert data.row_map()["k1"]["hits"] == pytest.approx(4.5)

    def test_chain_to_hourly(self, tmp_path):
        d = str(tmp_path)
        # 90 minutes of minutely data: only hour 0 is complete.
        self.fill_minutely(d, count=90)
        TimeAggregator(d).aggregate_directory("srvip")
        hourly = list_series(d, "srvip", "hourly")
        assert [s[3] for s in hourly] == [0]

    def test_retention_deletes_old_fine_files(self, tmp_path):
        """Rolled-up files past their age are deleted; the roll-up
        guard is exercised separately below."""
        d = str(tmp_path)
        self.fill_minutely(d, count=10)  # one complete decaminute
        agg = TimeAggregator(d, retention={"minutely": 100})
        agg.aggregate_directory("srvip")
        deleted = agg.apply_retention(now_ts=10_000)
        assert len(deleted) == 10
        assert list_series(d, "srvip", "minutely") == []
        # the covering decaminutely file survives
        assert len(list_series(d, "srvip", "decaminutely")) == 1

    def test_retention_keeps_unaggregated_files(self, tmp_path):
        """Regression: retention running ahead of aggregation used to
        delete minutely files no coarser file had absorbed yet --
        silently losing the data forever."""
        d = str(tmp_path)
        self.fill_minutely(d, count=5)  # incomplete decaminute: no roll-up
        agg = TimeAggregator(d, retention={"minutely": 100})
        agg.aggregate_directory("srvip")
        assert agg.apply_retention(now_ts=10_000) == []
        assert len(list_series(d, "srvip", "minutely")) == 5

    def test_retention_force_overrides_guard(self, tmp_path):
        d = str(tmp_path)
        self.fill_minutely(d, count=5)
        agg = TimeAggregator(d, retention={"minutely": 100})
        deleted = agg.apply_retention(now_ts=10_000, force=True)
        assert len(deleted) == 5
        assert list_series(d, "srvip", "minutely") == []

    def test_retention_keeps_recent(self, tmp_path):
        d = str(tmp_path)
        self.fill_minutely(d, count=5)
        agg = TimeAggregator(d, retention={"minutely": 100_000})
        assert agg.apply_retention(now_ts=10_000) == []

    def test_retention_none_keeps_forever(self, tmp_path):
        d = str(tmp_path)
        write_tsv(d, series(0, [], granularity="yearly"))
        agg = TimeAggregator(d)
        assert agg.apply_retention(now_ts=10**12) == []
