"""Unit tests for the encrypted-channel (_encrypted) aggregation."""

import pytest

from repro.observatory.encrypted import (
    ENCRYPTED_DATASET, TRANSPORT_OVERHEAD, EncryptedChannelAggregator,
    blind_transport, encrypt_observation, is_blinded, padded_size)
from repro.observatory.pipeline import Observatory
from tests.util import make_txn


def test_padded_size_rounds_up_to_block():
    assert padded_size(1, 128) == 128
    assert padded_size(128, 128) == 128
    assert padded_size(129, 128) == 256
    assert padded_size(300, 468) == 468
    # block <= 1 disables padding
    assert padded_size(300, 1) == 300
    assert padded_size(300, 0) == 300


def test_encrypt_observation_blinds_content():
    txn = make_txn(qname="secret.example.com", response_size=200,
                   delay_ms=12.5, source="src3")
    blinded = encrypt_observation(txn, "doh", padding_block=128)
    assert is_blinded(blinded) and not is_blinded(txn)
    assert blind_transport(blinded) == "doh"
    assert blinded.source == "!doh:src3"
    # payload-derived fields are gone
    assert blinded.qname == "" and blinded.qtype == 0
    assert blinded.rcode is None
    # size/timing survive: padded size plus the DoH framing overhead
    assert blinded.response_size == 256 + TRANSPORT_OVERHEAD["doh"]
    assert blinded.delay_ms == txn.delay_ms
    assert blinded.answered == txn.answered


def test_encrypt_observation_unanswered_has_no_wire_size():
    txn = make_txn(answered=False, rcode=None, response_size=0)
    blinded = encrypt_observation(txn, "dot")
    assert blinded.response_size == 0
    assert not blinded.answered


def test_encrypt_observation_rejects_unknown_transport():
    with pytest.raises(ValueError):
        encrypt_observation(make_txn(), "quic")


def test_blinded_transaction_survives_line_roundtrip():
    """The binary shard transport re-parses transaction lines, so a
    blinded observation must roundtrip the frozen line format."""
    from repro.observatory.transaction import Transaction

    blinded = encrypt_observation(
        make_txn(response_size=300, delay_ms=7.25), "doh")
    back = Transaction.from_line(blinded.to_line())
    assert is_blinded(back)
    assert back.source == blinded.source
    assert back.response_size == blinded.response_size
    assert back.answered == blinded.answered


def test_aggregator_summary_and_per_resolver_rows():
    agg = EncryptedChannelAggregator()
    for i in range(4):
        agg.observe(encrypt_observation(
            make_txn(ts=float(i), resolver_ip="10.0.0.1",
                     response_size=100, delay_ms=10.0), "doh"))
    agg.observe(encrypt_observation(
        make_txn(ts=4.0, resolver_ip="10.0.0.2", response_size=700,
                 delay_ms=30.0), "dot"))
    assert agg.seen() == 5
    rows = dict(agg.cut(0.0, 60.0))
    # transport summaries first, then per-resolver detail rows
    assert set(rows) == {"doh", "dot", "doh.10.0.0.1", "dot.10.0.0.2"}
    doh = rows["doh"]
    assert doh["queries"] == 4 and doh["answered"] == 4
    assert doh["resolvers"] == 1
    assert doh["size_min"] == doh["size_max"] == \
        128 + TRANSPORT_OVERHEAD["doh"]
    assert doh["delay_ms_mean"] == pytest.approx(10.0)
    # a cut resets the window
    assert agg.seen() == 0 and agg.cut(60.0, 120.0) == []


def test_aggregator_state_merge_matches_single_pass():
    """absorb() over sharded states equals one aggregator over the
    concatenation -- the sharded bit-identity promise in miniature."""
    txns = [encrypt_observation(
        make_txn(ts=float(i), resolver_ip="10.0.0.%d" % (i % 3),
                 response_size=100 + 13 * i, delay_ms=1.0 + i), "doh")
        for i in range(20)]
    whole = EncryptedChannelAggregator()
    whole.observe_batch(txns)
    shards = [EncryptedChannelAggregator() for _ in range(2)]
    for i, txn in enumerate(txns):
        shards[i % 2].observe(txn)
    merged = EncryptedChannelAggregator()
    for shard in shards:
        merged.absorb(shard.take_state(0.0))
    assert merged.cut(0.0, 60.0) == whole.cut(0.0, 60.0)


def test_pipeline_diverts_blinded_from_trackers():
    """Blinded records count toward seen but never reach the content
    trackers; they surface only in the _encrypted dump."""
    obs = Observatory(datasets=[("qname", 100)], encrypted=True,
                      use_bloom_gate=False, skip_recent_inserts=False)
    obs.ingest(make_txn(ts=1.0, qname="plain.example.com"))
    obs.ingest(encrypt_observation(
        make_txn(ts=2.0, qname="hidden.example.com"), "dot"))
    obs.finish()
    assert obs.total_seen == 2
    qname_keys = {key for d in obs.dumps["qname"] for key, _ in d.rows}
    assert qname_keys == {"plain.example.com"}
    enc = obs.dumps[ENCRYPTED_DATASET]
    assert len(enc) == 1 and dict(enc[0].rows)["dot"]["queries"] == 1


def test_pipeline_without_encrypted_channel_drops_nothing():
    """encrypted=None (the default) keeps historical behaviour: every
    record, blinded or not, feeds the trackers."""
    obs = Observatory(datasets=[("srvip", 100)], use_bloom_gate=False,
                      skip_recent_inserts=False)
    obs.ingest(make_txn(ts=1.0))
    obs.ingest(encrypt_observation(make_txn(ts=2.0), "doh"))
    obs.finish()
    assert obs.total_seen == 2
    assert ENCRYPTED_DATASET not in obs.dumps
    hits = sum(row["hits"] for d in obs.dumps["srvip"]
               for _, row in d.rows)
    assert hits == 2
