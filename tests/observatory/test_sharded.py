"""Tests for the sharded batch ingest engine.

The headline property: a :class:`ShardedObservatory` over N worker
processes produces the *same* window dumps as a single-process
:class:`Observatory` fed the same time-ordered stream -- identical
row order and identical feature columns (counters exact, HyperLogLog
registers byte-identical because per-feature hash seeds are fixed).
"""

import os
import signal
import time

import pytest

from repro.observatory import Observatory, ShardedObservatory
from repro.observatory.sharded import (
    PARTITIONS, partition_qname, partition_srcsrv, partition_srvip)
from repro.observatory.window import WindowManager, align_window
from repro.simulation import Scenario, SieChannel
from tests.util import make_txn


def _stream(duration=150.0, qps=25.0, seed=11):
    scenario = Scenario.tiny(seed=seed, duration=duration, client_qps=qps)
    return list(SieChannel(scenario).run())


#: Top-k sizes comfortably above the distinct-key counts of the test
#: stream, so neither the global nor the per-shard caches saturate and
#: the sharded output must match the single-process output exactly.
DATASETS = [("srvip", 2000), ("qname", 2000), ("esld", 1000), ("qtype", 64)]


def _run_single(txns, **kw):
    obs = Observatory(datasets=DATASETS, **kw)
    obs.consume(txns)
    obs.finish()
    return obs


def _run_sharded(txns, shards, **kw):
    obs = ShardedObservatory(shards=shards, datasets=DATASETS, **kw)
    obs.consume(txns)
    obs.finish()
    return obs


class TestEquivalence:
    """Sharded output == single-process output, window by window."""

    @pytest.fixture(scope="class")
    def txns(self):
        return _stream()

    @pytest.fixture(scope="class")
    def single(self, txns):
        return _run_single(txns)

    @pytest.mark.parametrize("shards,transport", [
        (2, "pickle"), (4, "pickle"), (2, "binary"), (4, "binary"),
        (2, "ring"), (4, "ring")])
    def test_dumps_match_single_process(self, txns, single, shards,
                                        transport):
        sharded = _run_sharded(txns, shards, transport=transport)
        assert sharded.total_seen == single.total_seen
        assert sharded.windows_completed == single.windows.windows_completed
        for name in single.datasets:
            sd, hd = single.dumps[name], sharded.dumps[name]
            assert [d.start_ts for d in hd] == [d.start_ts for d in sd]
            for a, b in zip(sd, hd):
                assert [k for k, _ in b.rows] == [k for k, _ in a.rows], \
                    "%s window %s: row order differs" % (name, a.start_ts)
                for (key, row_a), (_, row_b) in zip(a.rows, b.rows):
                    assert row_b == row_a, \
                        "%s window %s key %s" % (name, a.start_ts, key)
                assert b.stats["seen"] == a.stats["seen"]

    def test_seen_stats_partition_the_stream(self, txns):
        sharded = _run_sharded(txns, 2)
        total = sum(d.stats["seen"] for d in sharded.dumps["qtype"])
        assert total == len(txns)

    def test_capture_ratios_close_to_single(self, txns, single):
        """Per-shard cold starts lower capture slightly, never wildly."""
        sharded = _run_sharded(txns, 2)
        for name, ratio in single.capture_ratios().items():
            assert sharded.capture_ratios()[name] == \
                pytest.approx(ratio, abs=0.12)

    def test_top50_stable_under_saturation(self, txns, single):
        """Deliberate 3x oversaturation (k far below the distinct-key
        count, 4 shards): per-shard gate and eviction decisions then
        differ from the global cache's, so byte-exactness is off the
        table -- but the Top-k head must stay stable: near-total
        top-50 overlap and a long exact ranking prefix."""
        datasets = [("srvip", 150), ("qname", 300)]
        one = Observatory(datasets=datasets)
        one.consume(txns)
        one.finish()
        sharded = ShardedObservatory(shards=4, datasets=datasets)
        sharded.consume(txns)
        sharded.finish()
        for name in ("srvip", "qname"):
            for a, b in zip(one.dumps[name], sharded.dumps[name]):
                head_a = [k for k, _ in a.rows[:50]]
                head_b = [k for k, _ in b.rows[:50]]
                if not head_a:
                    assert not head_b
                    continue
                where = "%s window %s" % (name, a.start_ts)
                overlap = len(set(head_a) & set(head_b))
                assert overlap >= 45, where
                prefix = 0
                while (prefix < min(len(head_a), len(head_b))
                       and head_a[prefix] == head_b[prefix]):
                    prefix += 1
                assert prefix >= 15, where


class TestShardedMechanics:
    @pytest.mark.parametrize("transport", ["pickle", "binary", "ring"])
    def test_tsv_output_matches_single(self, tmp_path, transport):
        txns = _stream(duration=130.0, qps=15.0)
        single_dir = tmp_path / "single"
        sharded_dir = tmp_path / "sharded"
        _run_single(txns, output_dir=str(single_dir))
        _run_sharded(txns, 2, output_dir=str(sharded_dir),
                     transport=transport)
        names = sorted(os.listdir(single_dir))
        assert sorted(os.listdir(sharded_dir)) == names
        for name in names:
            a = (single_dir / name).read_text()
            b = (sharded_dir / name).read_text()
            # The #stats "kept" line may differ (per-shard caches
            # saturate later than one global cache); rows must not.
            rows_a = [l for l in a.splitlines() if not l.startswith("#stats")]
            rows_b = [l for l in b.splitlines() if not l.startswith("#stats")]
            assert rows_b == rows_a, name

    def test_ingest_single_transactions(self):
        obs = ShardedObservatory(shards=2, datasets=[("srvip", 16)])
        for i in range(5):
            assert obs.ingest(make_txn(ts=float(i))) == []
        dumps = obs.ingest(make_txn(ts=61.0))
        assert [d.start_ts for d in dumps] == [0]
        obs.finish()
        assert obs.total_seen == 6

    def test_cut_on_empty_window_gap(self):
        """A stream gap spanning whole windows fast-forwards like the
        single-process catch-up: one dump for the window that had
        data, nothing for the idle ones, but windows_completed still
        counts them (parity with WindowManager)."""
        obs = ShardedObservatory(shards=2, datasets=[("srvip", 16)])
        obs.ingest(make_txn(ts=10.0))
        dumps = obs.ingest(make_txn(ts=200.0))
        obs.finish()
        assert [d.start_ts for d in dumps] == [0]
        # window 0's only key was inserted mid-window, so the
        # survived-one-window rule leaves the dump empty
        assert [len(d) for d in dumps] == [0]
        starts = [d.start_ts for d in obs.dumps["srvip"]]
        assert starts == [0, 180]
        assert obs.windows_completed == 4  # 0, two skipped, 180

    def test_finish_is_idempotent_and_closes(self):
        obs = ShardedObservatory(shards=2, datasets=[("srvip", 16)])
        obs.ingest(make_txn(ts=1.0))
        obs.finish()
        assert obs.finish() == []
        with pytest.raises(RuntimeError):
            obs.ingest(make_txn(ts=2.0))

    def test_context_manager_closes_workers(self):
        with ShardedObservatory(shards=2, datasets=[("srvip", 16)]) as obs:
            obs.ingest(make_txn(ts=1.0))
            workers = list(obs._workers)
        for worker in workers:
            worker.join(timeout=5.0)
            assert not worker.is_alive()

    def test_worker_error_propagates(self):
        obs = ShardedObservatory(shards=2, datasets=[("srvip", 16)])
        obs._in_qs[0].put(("bogus-tag",))
        obs.timeout = 10.0
        with pytest.raises(RuntimeError, match="shard 0 failed"):
            obs._next_reply(expect="states")
        assert obs._closed

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            ShardedObservatory(shards=0)
        with pytest.raises(ValueError):
            ShardedObservatory(shards=2, window_seconds=0)
        with pytest.raises(ValueError):
            ShardedObservatory(shards=2, datasets=["srvip", "srvip"])
        with pytest.raises(KeyError):
            ShardedObservatory(shards=2, partition="nope")
        with pytest.raises(ValueError):
            ShardedObservatory(shards=2, transport="carrier-pigeon")

    def test_capture_ratios_require_finish(self):
        obs = ShardedObservatory(shards=2, datasets=[("srvip", 16)])
        try:
            with pytest.raises(RuntimeError):
                obs.capture_ratios()
        finally:
            obs.close()

    def test_partition_functions(self):
        txn = make_txn(resolver_ip="10.0.0.9", server_ip="192.0.2.7",
                       qname="a.example.com")
        assert partition_srcsrv(txn) == "10.0.0.9|192.0.2.7"
        assert partition_srvip(txn) == "192.0.2.7"
        assert partition_qname(txn) == "a.example.com"
        assert set(PARTITIONS) == {"srcsrv", "srvip", "qname"}

    def test_custom_partition_callable(self):
        obs = ShardedObservatory(
            shards=2, datasets=[("srvip", 16)],
            partition=lambda txn: txn.server_ip)
        for i in range(10):
            obs.ingest(make_txn(ts=float(i), server_ip="192.0.2.%d" % i))
        obs.finish()
        per_shard = [s["total_seen"] for s in obs.shard_stats().values()]
        assert sum(per_shard) == 10


class TestWorkerFailure:
    """Coordinator fault handling: a dead or hung worker must surface
    as a descriptive error within ``timeout`` and leave no live child
    processes behind (regression: ``_next_reply`` used to let a bare
    ``queue.Empty`` escape without ever calling ``close()``)."""

    @pytest.mark.parametrize("transport", ["pickle", "binary", "ring"])
    def test_sigkill_mid_run_raises_and_reaps_workers(self, transport):
        obs = ShardedObservatory(shards=2, datasets=[("srvip", 16)],
                                 timeout=2.0, transport=transport)
        try:
            obs.consume_batch([make_txn(ts=float(i), server_ip="192.0.2.%d" % i)
                               for i in range(8)])
            os.kill(obs._workers[0].pid, signal.SIGKILL)
            obs._workers[0].join(timeout=5.0)
            started = time.monotonic()
            with pytest.raises(RuntimeError, match="timed out after"):
                obs.ingest(make_txn(ts=61.0))  # forces a cut barrier
            elapsed = time.monotonic() - started
            assert elapsed < 3 * obs.timeout
            assert obs._closed
            for worker in obs._workers:
                assert not worker.is_alive()
        finally:
            obs.close()

    def test_sigkill_during_finish(self):
        obs = ShardedObservatory(shards=2, datasets=[("srvip", 16)],
                                 timeout=2.0)
        try:
            obs.ingest(make_txn(ts=1.0))
            os.kill(obs._workers[1].pid, signal.SIGKILL)
            obs._workers[1].join(timeout=5.0)
            with pytest.raises(RuntimeError, match="timed out after"):
                obs.finish()
            for worker in obs._workers:
                assert not worker.is_alive()
        finally:
            obs.close()

    def test_consume_batch_after_close_raises_cleanly(self):
        obs = ShardedObservatory(shards=2, datasets=[("srvip", 16)])
        obs.ingest(make_txn(ts=1.0))
        obs.close()
        with pytest.raises(RuntimeError, match="closed"):
            obs.consume_batch([make_txn(ts=2.0)])
        obs.close()  # idempotent

    def test_close_with_backlogged_queues(self):
        """close() must not deadlock on queue feeder threads even with
        undelivered batches sitting in every queue."""
        obs = ShardedObservatory(shards=2, datasets=[("srvip", 16)],
                                 batch_size=4)
        obs.consume_batch([make_txn(ts=float(i), server_ip="192.0.2.%d" % i)
                           for i in range(64)])
        started = time.monotonic()
        obs.close()
        assert time.monotonic() - started < 10.0
        for worker in obs._workers:
            worker.join(timeout=5.0)
            assert not worker.is_alive()


class TestFractionalWindows:
    """Regression: fractional window_seconds used to crash _align
    (int(0.5) == 0 -> ZeroDivisionError) or land on the wrong grid."""

    def test_align_window_fractional(self):
        assert align_window(1.3, 0.5) == 1.0
        assert align_window(0.49, 0.5) == 0
        assert align_window(2.0, 0.5) == 2
        # Integral windows keep returning exact ints (TSV filenames).
        assert align_window(119.0, 60) == 60
        assert isinstance(align_window(119.0, 60), int)

    def test_window_manager_fractional_window(self):
        from repro.observatory.keys import make_dataset
        from repro.observatory.tracker import TopKTracker

        wm = WindowManager(
            [TopKTracker(make_dataset("srvip", 8), use_bloom_gate=False)],
            window_seconds=0.5, skip_recent_inserts=False)
        assert wm.observe(make_txn(ts=0.6)) == []
        assert wm.window_start == 0.5
        dumps = wm.observe(make_txn(ts=1.7))
        # window [1.0, 1.5) was empty: fast-forwarded, not emitted
        assert [d.start_ts for d in dumps] == [0.5]
        assert wm.window_start == 1.5
        assert wm.windows_completed == 2

    def test_observatory_fractional_window_end_to_end(self):
        obs = Observatory(datasets=[("srvip", 8)], window_seconds=0.25,
                          skip_recent_inserts=False)
        obs.consume([make_txn(ts=0.1 * i) for i in range(10)])
        obs.finish()
        starts = [d.start_ts for d in obs.dumps["srvip"]]
        assert starts == [0, 0.25, 0.5, 0.75]
