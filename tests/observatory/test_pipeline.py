"""Integration tests for the Observatory facade."""

import random

import pytest

from repro.dnswire.constants import QTYPE, RCODE
from repro.dnswire.message import Message, ResourceRecord
from repro.dnswire.rdata import A
from repro.netsim.packet import build_udp_ipv4
from repro.observatory.pipeline import Observatory
from repro.observatory.tsv import list_series, read_tsv
from tests.util import make_nxdomain, make_txn


def stream(n=500, servers=5, seed=1):
    """Zipf-ish synthetic transaction stream spanning several windows."""
    rng = random.Random(seed)
    txns = []
    for i in range(n):
        ts = i * 0.5  # 2 tps -> 250 s -> 4+ windows
        server = "192.0.2.%d" % (min(int(rng.paretovariate(1.2)), servers),)
        if rng.random() < 0.2:
            txns.append(make_nxdomain(ts=ts, server_ip=server,
                                      qname="x%d.example.com" % i))
        else:
            txns.append(make_txn(ts=ts, server_ip=server,
                                 qname="www%d.example.com" % (i % 10)))
    return txns


class TestObservatory:
    def test_basic_ingest_and_top(self):
        obs = Observatory(datasets=[("srvip", 16)], use_bloom_gate=False)
        obs.consume(stream())
        obs.finish()
        assert obs.total_seen == 500
        top = obs.tracker("srvip").top(3)
        assert top[0].key.startswith("192.0.2.")
        assert top[0].hits >= top[1].hits or top[0].weight >= top[1].weight

    def test_dumps_accumulate_per_dataset(self):
        obs = Observatory(datasets=[("srvip", 16), ("qname", 32)],
                          use_bloom_gate=False)
        obs.consume(stream())
        obs.finish()
        assert len(obs.dumps["srvip"]) >= 4
        assert len(obs.dumps["qname"]) >= 4
        # Rows carry feature values.
        last = obs.dumps["srvip"][-1]
        if last.rows:
            assert "hits" in last.rows[0][1]

    def test_capture_ratio_reported(self):
        obs = Observatory(datasets=[("srvip", 16)], use_bloom_gate=False)
        obs.consume(stream())
        ratios = obs.capture_ratios()
        assert 0.5 < ratios["srvip"] <= 1.0

    def test_tsv_output(self, tmp_path):
        obs = Observatory(datasets=[("srvip", 16)], output_dir=str(tmp_path),
                          use_bloom_gate=False)
        obs.consume(stream())
        obs.finish()
        files = list_series(str(tmp_path), "srvip", "minutely")
        assert len(files) >= 4
        data = read_tsv(files[0][0])
        assert data.stats["seen"] > 0

    def test_dataset_spec_resolution(self):
        with pytest.raises(ValueError):
            Observatory(datasets=["nope"])
        with pytest.raises(ValueError):
            Observatory(datasets=["srvip", ("srvip", 10)])
        with pytest.raises(TypeError):
            Observatory(datasets=[42])

    def test_full_packet_path(self):
        """End-to-end: raw wire packets through parsing to top lists."""
        obs = Observatory(datasets=[("srvip", 8)], use_bloom_gate=False,
                          skip_recent_inserts=False)
        for i in range(20):
            query = Message.make_query("www.example.com", QTYPE.A, msg_id=i)
            response = Message.make_response(query, authoritative=True)
            response.answer.append(ResourceRecord(
                "www.example.com", QTYPE.A, 300, A("198.51.100.1")))
            qpkt = build_udp_ipv4("10.0.0.1", "192.0.2.53", 30000 + i, 53,
                                  query.to_wire())
            rpkt = build_udp_ipv4("192.0.2.53", "10.0.0.1", 53, 30000 + i,
                                  response.to_wire(), ttl=57)
            txn = obs.ingest_packets(qpkt, rpkt, float(i), float(i) + 0.015)
            assert txn.noerror
        obs.finish()
        top = obs.tracker("srvip").top(1)
        assert top[0].key == "192.0.2.53"
        dump = obs.dumps["srvip"][-1]
        row = dump.row_map()["192.0.2.53"]
        assert row["hits"] == 20
        assert row["ttl_top1"] == 300
        assert 10 < row["delay_q50"] < 25
        assert row["hops_q50"] == pytest.approx(7, abs=1)

    def test_qtype_and_rcode_datasets(self):
        obs = Observatory(datasets=["qtype", "rcode"], use_bloom_gate=False,
                          skip_recent_inserts=False)
        obs.consume(stream())
        obs.finish()
        qtype_keys = {e.key for e in obs.tracker("qtype").top()}
        assert "A" in qtype_keys
        rcode_keys = {e.key for e in obs.tracker("rcode").top()}
        assert {"NOERROR", "NXDOMAIN"} <= rcode_keys
