#!/usr/bin/env python3
"""Detect DGA botnet activity from the Observatory's aggregates.

The paper's Section 3.2 traces an NXDOMAIN surge at the gTLD servers
to the Mylobot botnet: millions of FQDNs under thousands of fake .com
SLDs.  This example shows how a platform operator would spot the same
signature from the aggregated data alone:

* the rcode dataset shows an elevated global NXDOMAIN share;
* the srvip rows of the gTLD servers show the NXD concentration at
  the top of the hierarchy ("the DNS's first line of defence");
* the per-eTLD NXD traffic has huge *distinct-qname* cardinality but
  tiny *valid-name* counts -- machine-generated names, not typos.

Run:  python examples/botnet_detection.py
"""

from repro.analysis.seriesops import accumulate_dumps, total_hits
from repro.analysis.tables import format_percent, format_table
from repro.observatory import Observatory
from repro.simulation import Scenario, SieChannel


def main():
    # A world with a strong DGA botnet (20% of client events).
    scenario = Scenario.tiny(seed=13, duration=300.0, client_qps=80.0,
                             botnet_share=0.20)
    channel = SieChannel(scenario)
    obs = Observatory(datasets=[("srvip", 800), ("etld", 300), "rcode"])
    obs.consume(channel.run())
    obs.finish()

    # --- signal 1: global RCODE mix -------------------------------
    rcode_rows = accumulate_dumps(obs.dumps["rcode"])
    total = total_hits(rcode_rows)
    print(format_table(
        ["RCODE", "share"],
        [(key, format_percent(row["hits"] / total))
         for key, row in sorted(rcode_rows.items(),
                                key=lambda kv: -kv[1]["hits"])],
        title="Global RCODE mix"))
    print()

    # --- signal 2: NXD concentration at the gTLD servers ----------
    gtld_ips = {ns.ip for ns in channel.dns.root.tlds["com"].nameservers}
    srvip_rows = accumulate_dumps(obs.dumps["srvip"])
    gtld_hits = sum(r["hits"] for ip, r in srvip_rows.items()
                    if ip in gtld_ips)
    gtld_nxd = sum(r["nxd"] for ip, r in srvip_rows.items()
                   if ip in gtld_ips)
    print("gTLD servers: %s of tracked traffic, %s NXDOMAIN"
          % (format_percent(gtld_hits / total_hits(srvip_rows)),
             format_percent(gtld_nxd / max(gtld_hits, 1))))
    print()

    # --- signal 3: DGA cardinality signature per eTLD --------------
    etld_rows = accumulate_dumps(obs.dumps["etld"])
    rows = []
    for etld, row in sorted(etld_rows.items(),
                            key=lambda kv: -kv[1]["nxd"])[:5]:
        hits = row["hits"]
        # qnamesa counts all names seen, qnames only resolving ones:
        # a DGA leaves a gulf between the two.
        rows.append([
            etld, int(hits),
            format_percent(row["nxd"] / max(hits, 1)),
            int(row["qnamesa"]), int(row["qnames"]),
        ])
    print(format_table(
        ["eTLD", "hits", "NXD", "names seen", "names valid"], rows,
        title="eTLDs ranked by NXDOMAIN volume (DGA signature)"))

    worst = rows[0]
    if worst[4] < worst[3] * 0.5:
        print("\n=> %s shows a DGA signature: %s of its names never "
              "resolve." % (worst[0],
                            format_percent(1 - worst[4] / worst[3])))


if __name__ == "__main__":
    main()
