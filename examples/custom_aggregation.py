#!/usr/bin/env python3
"""Define a custom Top-k aggregation and persist TSV time series.

Section 2.2: "A DNS object is any entity within the DNS, identified
with a textual key: the value of any transaction detail, or a
combination thereof."  This example builds two custom datasets --

* per-(organization) traffic, by resolving each nameserver IP through
  the AS database at ingest time, and
* per-(qtype, rcode) outcome pairs --

and shows the on-disk side of the pipeline: minutely TSV files,
aggregation to decaminutely, and retention.

Run:  python examples/custom_aggregation.py
"""

import os
import tempfile

from repro.analysis.tables import format_table
from repro.observatory import DatasetSpec, Observatory
from repro.observatory.aggregate import TimeAggregator
from repro.observatory.tsv import list_series, read_tsv
from repro.simulation import Scenario, SieChannel


def main():
    # 15 simulated minutes -> one complete decaminutely window.
    scenario = Scenario.tiny(seed=29, duration=900.0, client_qps=60.0)
    channel = SieChannel(scenario)
    topology = channel.dns.topology

    # --- custom key extractors ---------------------------------------
    def key_org(txn):
        """Attribute each transaction to the nameserver's operator."""
        return topology.org_of_ip(txn.server_ip)

    def key_outcome(txn):
        from repro.dnswire.constants import RCODE

        status = "UNANS" if not txn.answered else RCODE.name_of(txn.rcode)
        return "%s/%s" % (txn.qtype_name(), status)

    datasets = [
        DatasetSpec("org", key_org, k=64,
                    description="traffic per operator"),
        DatasetSpec("outcome", key_outcome, k=128,
                    description="qtype/rcode outcome pairs"),
    ]

    with tempfile.TemporaryDirectory() as outdir:
        obs = Observatory(datasets=datasets, output_dir=outdir)
        obs.consume(channel.run())
        obs.finish()

        # --- live view ------------------------------------------------
        tracker = obs.tracker("org")
        rows = [(e.key, e.hits) for e in tracker.top(8)]
        print(format_table(["organization", "hits"], rows,
                           title="Traffic per operator (live top list)"))
        print()
        rows = [(e.key, e.hits) for e in obs.tracker("outcome").top(8)]
        print(format_table(["qtype/rcode", "hits"], rows,
                           title="Outcome pairs"))
        print()

        # --- on-disk time series ---------------------------------------
        minutely = list_series(outdir, "org", "minutely")
        print("minutely files written: %d" % len(minutely))
        TimeAggregator(outdir).aggregate_directory("org")
        deca = list_series(outdir, "org", "decaminutely")
        print("decaminutely files after aggregation: %d" % len(deca))
        if deca:
            data = read_tsv(deca[0][0])
            top = data.rows[0]
            print("top org in %s: %s (%.1f hits/min avg)"
                  % (os.path.basename(deca[0][0]), top[0],
                     top[1]["hits"]))

        # --- retention --------------------------------------------------
        aggregator = TimeAggregator(outdir, retention={"minutely": 60})
        deleted = aggregator.apply_retention(now_ts=scenario.duration + 7200)
        print("retention removed %d expired minutely files" % len(deleted))


if __name__ == "__main__":
    main()
