#!/usr/bin/env python3
"""Diurnal traffic patterns and infrastructure mapping.

Two operator tasks on top of the Observatory:

1. **Capacity planning** -- user interest follows day/night cycles
   (the diurnal patterns behind the paper's hourly top lists, §4.2).
   This example compresses one "day" into the simulated run, writes
   minutely TSV files, aggregates them, and shows the peak-to-trough
   query-rate swing an authoritative operator must provision for.

2. **Address-space mapping** -- the Figure 6 view: every observed
   nameserver plotted on a Hilbert curve, exported both as ASCII and
   as a PGM image (open with any image viewer).

Run:  python examples/diurnal_capacity.py
"""

import os
import tempfile

from repro.analysis.heatmap import build_heatmap
from repro.analysis.tables import format_series
from repro.observatory import Observatory
from repro.simulation import Scenario, SieChannel


def main():
    day = 1200.0  # one compressed "day"
    scenario = Scenario.tiny(
        seed=47, duration=day, client_qps=50.0,
        diurnal_amplitude=0.7, diurnal_period=day,
    )
    channel = SieChannel(scenario)
    obs = Observatory(datasets=[("srvip", 800)])
    transactions = []
    for txn in channel.run():
        transactions.append(txn)
        obs.ingest(txn)
    obs.finish()

    # --- 1. the diurnal load curve --------------------------------
    per_window = [(d.start_ts, d.stats["seen"])
                  for d in obs.dumps["srvip"]]
    print(format_series(
        [("%dm" % (ts // 60), seen) for ts, seen in per_window],
        x_label="minute", y_label="transactions/min", max_points=20))
    rates = [seen for _, seen in per_window if seen]
    if rates:
        print("\npeak %d/min vs trough %d/min -> provision %.1fx the "
              "mean" % (max(rates), min(rates),
                        max(rates) / (sum(rates) / len(rates))))

    # --- 2. the Figure 6 map ---------------------------------------
    heatmap = build_heatmap(transactions, order=5)
    print("\n%d /24 prefixes in use; density histogram: %s"
          % (heatmap.populated_prefixes,
             dict(sorted(heatmap.prefix_density_histogram().items())[:4])))
    out = os.path.join(tempfile.gettempdir(), "dns_observatory_fig6.pgm")
    heatmap.to_pgm(out)
    print("Hilbert heatmap image written to %s" % out)


if __name__ == "__main__":
    main()
