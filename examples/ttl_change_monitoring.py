#!/usr/bin/env python3
"""Monitor DNS infrastructure changes through TTL dynamics (Section 4).

Operators lower TTLs before migrations and raise them afterwards.
This example scripts three real-world-style events into the simulated
DNS -- a TTL slash, a renumbering into a cloud provider, and an NS
provider switch -- and shows the Observatory detecting and classifying
each one from the aggregated aafqdn dataset plus the DNSDB-like
history store.

Run:  python examples/ttl_change_monitoring.py
"""

from repro.analysis.dnsdb import DnsdbStore
from repro.analysis.ttlchanges import (
    TtlChangeDetector,
    classify_events,
    render_table4,
    table4,
)
from repro.analysis.ttltraffic import figure7, render_figure7
from repro.observatory import Observatory
from repro.simulation import Scenario, SieChannel
from repro.simulation.scenario import NsChange, Renumber, TtlChange


def main():
    change_at = 900.0
    scenario = Scenario.tiny(
        seed=23, duration=2400.0, client_qps=50.0,
        scripted_events=[
            # An IoT vendor slashes its TTL (the xmsecu.com case).
            TtlChange(at=change_at, name="xmsecu.com", new_ttl=10),
            # A popular host moves into a cloud, TTL raised afterwards.
            Renumber(at=change_at, fqdn="blogs.webjournal.net",
                     new_ips=("52.166.106.97",), new_ttl=38400),
            # A domain switches DNS providers.
            NsChange(at=change_at, sld="clickgrid.net",
                     new_ns_org="MICROSOFT", new_ttl=10),
        ],
    )
    channel = SieChannel(scenario)
    obs = Observatory(datasets=[("esld", 800), ("aafqdn", 1200)])
    dnsdb = DnsdbStore()
    for txn in channel.run():
        obs.ingest(txn)
        dnsdb.observe_transaction(txn)
    obs.finish()

    # --- the Figure 7 view: TTL slash drives query volume ----------
    result = figure7(obs, "xmsecu.com", change_at=change_at)
    print(render_figure7(result, "xmsecu.com"))
    print()

    # --- the Table 4 view: detect + classify all changes ------------
    detector = TtlChangeDetector()
    for dump in obs.dumps["aafqdn"]:
        detector.observe_dump(dump)
    events = classify_events(detector.events, dnsdb)
    counts, per_fqdn = table4(events)
    print(render_table4(counts, per_fqdn))

    print("\nDetected events:")
    for fqdn, event in sorted(per_fqdn.items()):
        print("  %-28s %-14s TTL %s -> %s  %s" % (
            fqdn, event.category, event.old_ttl, event.new_ttl,
            event.comment))


if __name__ == "__main__":
    main()
