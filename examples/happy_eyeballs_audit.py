#!/usr/bin/env python3
"""Audit negative-caching misconfigurations (Section 5 / Figure 9).

Dual-stack clients pair every A lookup with an AAAA lookup (Happy
Eyeballs).  For IPv4-only domains, every one of those AAAA queries is
answered empty -- and when the zone's negative-caching TTL is much
lower than its A TTL, resolvers barely cache the emptiness, hammering
the authoritative servers and adding client latency.

This example ranks the top FQDNs by their empty-AAAA share, flags the
misconfigured ones, and demonstrates the fix (Section 5.3): once a
domain publishes AAAA records, the junk traffic collapses.

Run:  python examples/happy_eyeballs_audit.py
"""

from repro.analysis.happyeyeballs import (
    figure9,
    high_empty_fqdns,
    ipv6_rollout,
    render_figure9,
    render_ipv6_rollout,
)
from repro.observatory import Observatory
from repro.simulation import Scenario, SieChannel
from repro.simulation.scenario import EnableIpv6


def run(scenario):
    channel = SieChannel(scenario)
    obs = Observatory(datasets=[("qname", 2000)])
    obs.consume(channel.run())
    obs.finish()
    return channel, obs


def main():
    # --- phase 1: the audit -----------------------------------------
    scenario = Scenario.tiny(seed=19, duration=600.0, client_qps=60.0,
                             dualstack_fraction=0.6)
    channel, obs = run(scenario)

    def negttl(fqdn):
        zone = channel.dns.find_sld_zone(fqdn)
        return zone.soa_negttl if zone else None

    points = figure9(obs, negttl, top_n=250, horizon=scenario.duration)
    print(render_figure9(points))

    flagged = high_empty_fqdns(points, threshold=0.5)
    print("\nRecommendations:")
    for p in flagged:
        print("  %s: negTTL %ds vs A TTL %ds -- raise the SOA minimum "
              "or publish AAAA records." % (p.fqdn, p.neg_ttl, p.a_ttl))

    # --- phase 2: the fix (Section 5.3) ------------------------------
    rollout_at = 300.0
    fix_scenario = Scenario.tiny(
        seed=19, duration=900.0, client_qps=60.0, dualstack_fraction=0.6,
        scripted_events=[
            EnableIpv6(at=rollout_at, fqdn="time-a.ntpsync.com"),
        ],
    )
    _, fixed_obs = run(fix_scenario)
    result = ipv6_rollout(fixed_obs, "time-a.ntpsync.com", rollout_at)
    print()
    print(render_ipv6_rollout(result, "time-a.ntpsync.com"))


if __name__ == "__main__":
    main()
