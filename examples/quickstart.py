#!/usr/bin/env python3
"""Quickstart: simulate DNS traffic, track Top-k objects, read results.

This is the 60-second tour of the library:

1. describe a world with a :class:`~repro.simulation.Scenario`;
2. run the SIE-style channel to get a stream of resolver-to-
   authoritative transactions;
3. feed the stream into a :class:`~repro.observatory.Observatory`
   tracking several Top-k datasets;
4. inspect the live top lists and the per-window feature rows.

Run:  python examples/quickstart.py
"""

from repro.analysis.tables import format_percent, format_table
from repro.observatory import Observatory
from repro.simulation import Scenario, SieChannel


def main():
    # 1. A small deterministic world: ~40 qps of client traffic over
    #    3 simulated minutes, 12 resolvers, a few hundred domains.
    scenario = Scenario.tiny(seed=7)
    channel = SieChannel(scenario)

    # 2+3. Stream the cache-miss transactions into the Observatory.
    obs = Observatory(datasets=[("srvip", 500), ("qname", 1000), "qtype"])
    for txn in channel.run():
        obs.ingest(txn)
    obs.finish()

    print("processed %d client queries -> %d upstream transactions "
          "(cache hit ratio %s)\n" % (
              channel.client_queries, obs.total_seen,
              format_percent(channel.cache_hit_ratio())))

    # 4a. The live Top-10 nameservers, straight from the SS cache.
    now = scenario.duration
    tracker = obs.tracker("srvip")
    rows = []
    for entry in tracker.top(10):
        ns = channel.dns.topology.nameservers_by_ip.get(entry.key)
        rows.append([
            entry.key,
            ns.org if ns else "?",
            entry.hits,
            "%.2f" % tracker.cache.rate(entry, now),
        ])
    print(format_table(["nameserver IP", "org", "hits", "est. rate/s"],
                       rows, title="Top-10 nameservers"))
    print()

    # 4b. Per-window feature rows (what gets written to TSV files).
    last_dump = obs.dumps["qtype"][-1]
    rows = []
    for key, row in last_dump.rows[:6]:
        rows.append([key, int(row["hits"]), int(row["nxd"]),
                     "%.0f" % row["delay_q50"], row["ttl_top1"]])
    print(format_table(
        ["QTYPE", "hits", "nxd", "delay[ms]", "top TTL"], rows,
        title="QTYPE features, window @%ds" % last_dump.start_ts))
    print("\ncapture ratios:", {
        k: round(v, 3) for k, v in obs.capture_ratios().items()})


if __name__ == "__main__":
    main()
