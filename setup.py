"""Legacy setup shim.

The canonical project metadata lives in ``pyproject.toml``.  This file
exists so that ``pip install -e .`` works on environments without the
``wheel`` package (offline PEP 660 fallback via ``setup.py develop``).
"""

from setuptools import setup

setup()
