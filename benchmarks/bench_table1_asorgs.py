"""Table 1: top AS organizations by DNS transaction volume.

Paper result: 10 organizations receive >50 % of observed queries;
AMAZON leads (16 %); CDNs (AKAMAI, CLOUDFLARE) show markedly lower
delays and hop counts than cloud providers; CLOUDFLARE (anycast) uses
far fewer nameserver IPs than AKAMAI.
"""

from benchmarks.conftest import save_result
from repro.analysis.asattribution import render_table1, table1, top_share


def test_table1_as_organizations(benchmark, base_run):
    topo = base_run.dns.topology
    rows, total, attributed = benchmark.pedantic(
        table1, args=(base_run.obs, topo.asdb, topo.asnames),
        rounds=3, iterations=1)
    save_result("table1_asorgs", render_table1(rows, total))

    names = [r.org for r in rows]
    by_name = {r.org: r for r in rows}
    assert top_share(rows, total) > 0.4
    assert "VERISIGN" in names
    if "AKAMAI" in by_name and "AMAZON" in by_name:
        assert by_name["AKAMAI"].mean_delay < by_name["AMAZON"].mean_delay
        assert by_name["AKAMAI"].mean_hops < by_name["AMAZON"].mean_hops
    if "CLOUDFLARE" in by_name and "AKAMAI" in by_name:
        assert by_name["CLOUDFLARE"].servers < by_name["AKAMAI"].servers
