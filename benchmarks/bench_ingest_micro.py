"""Micro-benchmarks for the single-process ingest hot path.

Quantifies the batch-ingest optimizations that ride along with the
sharded engine: lazy :class:`TxnHashes` (each base hash is computed on
first use instead of eagerly for every tracker), memoized key
extraction (the PSL walk for esld/etld is cached per qname), and the
hoisted window-boundary check of ``consume_batch``.

Run directly (``python benchmarks/bench_ingest_micro.py [--check]``)
it becomes the ingest throughput trail: one fixed workload through
single-process, sharded-pickle, sharded-binary, and sharded-ring
ingest, written to ``benchmarks/results/BENCH_ingest.json`` (the
committed perf trajectory).  ``--check`` additionally gates: the
single-process rate must clear an absolute txn/s floor everywhere,
and sharded-ring must beat sharded-binary by 1.5x where >= 2 cores
provide real parallelism.
"""

import json
import os
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if __package__ in (None, ""):  # executed as a script, not via pytest
    for _path in (_ROOT, os.path.join(_ROOT, "src")):
        if _path not in sys.path:
            sys.path.insert(0, _path)

import pytest

from benchmarks.conftest import (
    RESULTS_DIR,
    base_scenario,
    measure_sharded_run,
    save_result,
)
from repro.observatory.features import TxnHashes
from repro.observatory.keys import make_dataset
from repro.observatory.pipeline import Observatory
from repro.sketches._hashing import hash64
from repro.simulation.sie import SieChannel


@pytest.fixture(scope="module")
def transaction_batch():
    scenario = base_scenario(duration=120.0, client_qps=150.0)
    return list(SieChannel(scenario).run())


def test_txn_hashes_lazy_vs_eager(benchmark, transaction_batch):
    """A single-dataset pipeline touches at most one or two of the
    four base hashes; lazy evaluation should beat computing all of
    them up front (what the eager implementation did)."""
    def lazy():
        total = 0
        for txn in transaction_batch:
            hashes = TxnHashes(txn)
            total += hashes.server & 1  # one feature consumer
        return total

    benchmark.pedantic(lazy, rounds=5, iterations=1)
    lazy_s = benchmark.stats["mean"]

    import time

    def eager():
        total = 0
        for txn in transaction_batch:
            server = hash64(txn.server_ip)
            resolver = hash64(txn.resolver_ip)
            qname = hash64(txn.qname)
            qdots = txn.qdots
            total += server & 1
        return total

    t0 = time.perf_counter()
    for _ in range(5):
        eager()
    eager_s = (time.perf_counter() - t0) / 5
    save_result(
        "micro_txn_hashes",
        "TxnHashes over %d txns, one hash consumed:\n"
        "  lazy  %.1f us/txn\n  eager %.1f us/txn (computes all 4)\n"
        "  speedup %.2fx" % (
            len(transaction_batch),
            1e6 * lazy_s / len(transaction_batch),
            1e6 * eager_s / len(transaction_batch),
            eager_s / lazy_s))
    assert lazy_s < eager_s


def test_esld_key_extraction_memoized(benchmark, transaction_batch):
    """The esld extractor caches the public-suffix walk per qname;
    repeated qnames (the common case -- DNS traffic is heavily
    skewed) must hit the memo."""
    spec = make_dataset("esld", 2000)
    extract = spec.make_extractor()

    def run():
        count = 0
        for txn in transaction_batch:
            if extract(txn) is not None:
                count += 1
        return count

    count = benchmark.pedantic(run, rounds=5, iterations=1)
    per_txn = 1e6 * benchmark.stats["mean"] / len(transaction_batch)
    save_result(
        "micro_esld_extraction",
        "memoized esld extraction: %.2f us/txn (%d/%d keyed)" % (
            per_txn, count, len(transaction_batch)))
    assert count > 0
    assert per_txn < 10.0


def test_consume_batch_vs_ingest_loop(benchmark, transaction_batch):
    """consume_batch (hoisted boundary checks, pre-bound trackers)
    must not be slower than the per-transaction ingest loop."""
    def batched():
        obs = Observatory(datasets=[("srvip", 2000)], use_bloom_gate=False)
        obs.consume_batch(transaction_batch)
        obs.finish()
        return obs

    benchmark.pedantic(batched, rounds=3, iterations=1)
    batched_s = benchmark.stats["mean"]

    import time

    t0 = time.perf_counter()
    obs = Observatory(datasets=[("srvip", 2000)], use_bloom_gate=False)
    for txn in transaction_batch:
        obs.ingest(txn)
    obs.finish()
    loop_s = time.perf_counter() - t0

    save_result(
        "micro_consume_batch",
        "srvip-only ingest of %d txns:\n"
        "  consume_batch %.0f txn/s\n  ingest loop   %.0f txn/s\n"
        "  speedup %.2fx" % (
            len(transaction_batch),
            len(transaction_batch) / batched_s,
            len(transaction_batch) / loop_s,
            loop_s / batched_s))
    # Allow scheduling noise, but batching must never regress badly.
    assert batched_s < loop_s * 1.10


# ---------------------------------------------------------------------
# The committed throughput trail: BENCH_ingest.json + the CI gate
# ---------------------------------------------------------------------

#: shard count for the trail runs (kept small: the gate must also be
#: honest on 2-core CI runners)
TRAIL_SHARDS = 2

#: absolute single-process floor (txn/s).  PR 1 measured ~3.7k on the
#: reference container *before* the batched hot path; the floor sits
#: below that so slower CI hardware does not flake, while still
#: catching any order-of-magnitude regression.
FLOOR_TXN_PER_S = 2000.0

#: required sharded-ring advantage over sharded-binary, gated on >= 2
#: cores (on one core every transport time-shares the same CPU and the
#: ring's win shrinks to its constant-factor savings)
RING_VS_BINARY_FLOOR = 1.5

BENCH_JSON = os.path.join(RESULTS_DIR, "BENCH_ingest.json")

#: the trail workload (same dataset mix as the throughput benches)
TRAIL_DATASETS = [("srvip", 2000), ("qname", 4000), ("esld", 2000),
                  "qtype", "rcode", ("aafqdn", 2000)]


def _measure_single(txns):
    import time

    obs = Observatory(datasets=TRAIL_DATASETS, use_bloom_gate=False,
                      keep_dumps=False)
    t0 = time.perf_counter()
    obs.consume(txns)
    obs.finish()
    wall = time.perf_counter() - t0
    assert obs.total_seen == len(txns)
    return {"txn_per_s": round(len(txns) / wall, 1),
            "wall_s": round(wall, 3)}


def run_ingest_trail(out_path=BENCH_JSON):
    """Measure the four ingest configurations and write the JSON trail.

    Returns the payload dict (also written to *out_path*).
    """
    cores = os.cpu_count() or 1
    txns = list(SieChannel(
        base_scenario(duration=120.0, client_qps=150.0)).run())
    configs = {"single-process": _measure_single(txns)}
    single_rate = configs["single-process"]["txn_per_s"]
    for transport in ("pickle", "binary", "ring"):
        run = measure_sharded_run(
            txns, TRAIL_SHARDS, transport, TRAIL_DATASETS,
            use_bloom_gate=False)
        run["speedup_vs_single"] = round(run["txn_per_s"] / single_rate, 3)
        configs["sharded-" + transport] = run
    ring_vs_binary = (configs["sharded-ring"]["txn_per_s"]
                      / configs["sharded-binary"]["txn_per_s"])
    payload = {
        "bench": "ingest",
        "workload": {
            "transactions": len(txns),
            "datasets": [d if isinstance(d, str) else list(d)
                         for d in TRAIL_DATASETS],
            "shards": TRAIL_SHARDS,
        },
        "cores": cores,
        "floor_txn_per_s": FLOOR_TXN_PER_S,
        "ring_vs_binary": round(ring_vs_binary, 3),
        "ring_vs_binary_floor": RING_VS_BINARY_FLOOR,
        "ring_gate_active": cores >= 2,
        "configs": configs,
    }
    os.makedirs(os.path.dirname(out_path), exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


def check_ingest_trail(payload):
    """Apply the CI gates to a measured trail; returns failure list."""
    failures = []
    single_rate = payload["configs"]["single-process"]["txn_per_s"]
    if single_rate < payload["floor_txn_per_s"]:
        failures.append(
            "single-process ingest %.0f txn/s below the %.0f floor"
            % (single_rate, payload["floor_txn_per_s"]))
    if payload["ring_gate_active"] and \
            payload["ring_vs_binary"] < payload["ring_vs_binary_floor"]:
        failures.append(
            "sharded-ring is only %.2fx sharded-binary "
            "(>= %.1fx required on %d cores)"
            % (payload["ring_vs_binary"], payload["ring_vs_binary_floor"],
               payload["cores"]))
    return failures


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(
        description="measure the ingest throughput trail "
                    "(single / sharded-pickle / sharded-binary / "
                    "sharded-ring) and write BENCH_ingest.json")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when a throughput gate "
                             "fails (txn/s floor; ring >= 1.5x binary "
                             "where >= 2 cores are available)")
    parser.add_argument("-o", "--output", default=BENCH_JSON,
                        help="JSON output path")
    args = parser.parse_args(argv)
    payload = run_ingest_trail(args.output)
    for name in ("single-process", "sharded-pickle", "sharded-binary",
                 "sharded-ring"):
        row = payload["configs"][name]
        extra = ""
        if "speedup_vs_single" in row:
            extra = "  (%.2fx single, %.0f%% worker util)" % (
                row["speedup_vs_single"],
                100 * row["worker_utilization"])
        print("%-16s %8.0f txn/s%s" % (name, row["txn_per_s"], extra))
    print("ring vs binary: %.2fx (gate %s, %d cores)  -> %s" % (
        payload["ring_vs_binary"],
        "active" if payload["ring_gate_active"] else "inactive",
        payload["cores"], args.output))
    if args.check:
        failures = check_ingest_trail(payload)
        for failure in failures:
            print("GATE FAILED: %s" % failure, file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
