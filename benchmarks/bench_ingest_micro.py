"""Micro-benchmarks for the single-process ingest hot path.

Quantifies the batch-ingest optimizations that ride along with the
sharded engine: lazy :class:`TxnHashes` (each base hash is computed on
first use instead of eagerly for every tracker), memoized key
extraction (the PSL walk for esld/etld is cached per qname), and the
hoisted window-boundary check of ``consume_batch``.
"""

import pytest

from benchmarks.conftest import base_scenario, save_result
from repro.observatory.features import TxnHashes
from repro.observatory.keys import make_dataset
from repro.observatory.pipeline import Observatory
from repro.sketches._hashing import hash64
from repro.simulation.sie import SieChannel


@pytest.fixture(scope="module")
def transaction_batch():
    scenario = base_scenario(duration=120.0, client_qps=150.0)
    return list(SieChannel(scenario).run())


def test_txn_hashes_lazy_vs_eager(benchmark, transaction_batch):
    """A single-dataset pipeline touches at most one or two of the
    four base hashes; lazy evaluation should beat computing all of
    them up front (what the eager implementation did)."""
    def lazy():
        total = 0
        for txn in transaction_batch:
            hashes = TxnHashes(txn)
            total += hashes.server & 1  # one feature consumer
        return total

    benchmark.pedantic(lazy, rounds=5, iterations=1)
    lazy_s = benchmark.stats["mean"]

    import time

    def eager():
        total = 0
        for txn in transaction_batch:
            server = hash64(txn.server_ip)
            resolver = hash64(txn.resolver_ip)
            qname = hash64(txn.qname)
            qdots = txn.qdots
            total += server & 1
        return total

    t0 = time.perf_counter()
    for _ in range(5):
        eager()
    eager_s = (time.perf_counter() - t0) / 5
    save_result(
        "micro_txn_hashes",
        "TxnHashes over %d txns, one hash consumed:\n"
        "  lazy  %.1f us/txn\n  eager %.1f us/txn (computes all 4)\n"
        "  speedup %.2fx" % (
            len(transaction_batch),
            1e6 * lazy_s / len(transaction_batch),
            1e6 * eager_s / len(transaction_batch),
            eager_s / lazy_s))
    assert lazy_s < eager_s


def test_esld_key_extraction_memoized(benchmark, transaction_batch):
    """The esld extractor caches the public-suffix walk per qname;
    repeated qnames (the common case -- DNS traffic is heavily
    skewed) must hit the memo."""
    spec = make_dataset("esld", 2000)
    extract = spec.make_extractor()

    def run():
        count = 0
        for txn in transaction_batch:
            if extract(txn) is not None:
                count += 1
        return count

    count = benchmark.pedantic(run, rounds=5, iterations=1)
    per_txn = 1e6 * benchmark.stats["mean"] / len(transaction_batch)
    save_result(
        "micro_esld_extraction",
        "memoized esld extraction: %.2f us/txn (%d/%d keyed)" % (
            per_txn, count, len(transaction_batch)))
    assert count > 0
    assert per_txn < 10.0


def test_consume_batch_vs_ingest_loop(benchmark, transaction_batch):
    """consume_batch (hoisted boundary checks, pre-bound trackers)
    must not be slower than the per-transaction ingest loop."""
    def batched():
        obs = Observatory(datasets=[("srvip", 2000)], use_bloom_gate=False)
        obs.consume_batch(transaction_batch)
        obs.finish()
        return obs

    benchmark.pedantic(batched, rounds=3, iterations=1)
    batched_s = benchmark.stats["mean"]

    import time

    t0 = time.perf_counter()
    obs = Observatory(datasets=[("srvip", 2000)], use_bloom_gate=False)
    for txn in transaction_batch:
        obs.ingest(txn)
    obs.finish()
    loop_s = time.perf_counter() - t0

    save_result(
        "micro_consume_batch",
        "srvip-only ingest of %d txns:\n"
        "  consume_batch %.0f txn/s\n  ingest loop   %.0f txn/s\n"
        "  speedup %.2fx" % (
            len(transaction_batch),
            len(transaction_batch) / batched_s,
            len(transaction_batch) / loop_s,
            loop_s / batched_s))
    # Allow scheduling noise, but batching must never regress badly.
    assert batched_s < loop_s * 1.10
