"""Figure 7: the xmsecu.com TTL slash (600 s -> 10 s).

Paper result: after the surveillance-device domain cut its TTL from 10
minutes to 10 seconds, the query volume at the authoritative side
rose massively -- a direct demonstration that TTLs gate query rates.
"""

import pytest

from benchmarks.conftest import BenchRun, base_scenario, save_result
from repro.analysis.ttltraffic import figure7, render_figure7
from repro.simulation.buildout import XMSECU_FQDN
from repro.simulation.scenario import TtlChange

DURATION = 3000.0
CHANGE_AT = 1200.0


@pytest.fixture(scope="module")
def ttl_drop_run():
    scenario = base_scenario(
        duration=DURATION, client_qps=80.0, n_slds=600,
        popular_fqdns=800,
        scripted_events=[
            TtlChange(at=CHANGE_AT, name="xmsecu.com", new_ttl=10),
        ],
    )
    return BenchRun(scenario, datasets=[("esld", 1500)],
                    keep_transactions=False)


def test_fig7_ttl_drop_amplifies_queries(benchmark, ttl_drop_run):
    result = benchmark.pedantic(
        figure7, args=(ttl_drop_run.obs, "xmsecu.com"),
        kwargs={"change_at": CHANGE_AT}, rounds=3, iterations=1)
    save_result("fig7_ttl_drop", render_figure7(result, "xmsecu.com"))

    assert result["rate_before"] > 0
    # Paper: "a massive increase in queries".
    assert result["amplification"] > 3.0
    # The per-window TTL reading flips from 600 to 10 after the change
    # (ignoring windows without A answers).
    ttls_after = {ttl for ts, _, ttl in result["series"]
                  if ts > CHANGE_AT + 600 and ttl}
    assert 10 in ttls_after
