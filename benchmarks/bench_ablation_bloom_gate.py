"""Ablation: the Bloom-filter eviction gate (Section 2.2).

The paper gates Space-Saving evictions behind a Bloom filter "to skip
incidental observations of rare keys".  This bench quantifies the
effect on the srvip tracker: cache churn (evictions) drops sharply
with the gate on, while the capture ratio stays essentially unchanged
-- one-off keys stop displacing long-lived objects.
"""

import pytest

from benchmarks.conftest import base_scenario, save_result
from repro.analysis.tables import format_table
from repro.observatory.pipeline import Observatory
from repro.simulation.sie import SieChannel


@pytest.fixture(scope="module")
def churn_batch():
    # qname keys churn hardest (botnet + ephemerals): use a small k to
    # put the cache under pressure.
    scenario = base_scenario(duration=240.0, client_qps=120.0)
    return list(SieChannel(scenario).run())


def _run(batch, use_gate):
    obs = Observatory(datasets=[("qname", 500)], use_bloom_gate=use_gate)
    obs.consume(batch)
    obs.finish()
    cache = obs.tracker("qname").cache
    return {
        "evictions": cache.evictions,
        "gated": cache.gated,
        "capture": cache.capture_ratio(),
    }


def test_ablation_bloom_gate(benchmark, churn_batch):
    gated = benchmark.pedantic(_run, args=(churn_batch, True),
                               rounds=2, iterations=1)
    ungated = _run(churn_batch, False)
    save_result("ablation_bloom_gate", format_table(
        ["variant", "evictions", "gated", "capture"],
        [("bloom gate ON", gated["evictions"], gated["gated"],
          "%.3f" % gated["capture"]),
         ("bloom gate OFF", ungated["evictions"], 0,
          "%.3f" % ungated["capture"])],
        title="Ablation: Bloom eviction gate (qname, k=500)"))

    # The gate absorbs first sightings: far fewer evictions.
    assert gated["evictions"] < ungated["evictions"]
    assert gated["gated"] > 0
    # Capture must not collapse (popular keys still tracked).
    assert gated["capture"] > ungated["capture"] * 0.8
