"""Figure 5: nameservers seen as a function of monitoring time.

Paper result: over 3 days the set of observed authoritative
nameserver IPs keeps growing to 1.5 M, with diminishing returns; 48 %
of observed /24 prefixes hold a single nameserver address (the
unpopular tail is well spread over the address space).
"""

from benchmarks.conftest import save_result
from repro.analysis.representativeness import (
    nameservers_over_time,
    render_figure5,
    slash24_density,
)


def _fig5(transactions):
    series = nameservers_over_time(transactions, step_seconds=60.0)
    density = slash24_density(transactions)
    return series, density


def test_fig5_nameservers_over_time(benchmark, base_run):
    series, density = benchmark.pedantic(
        _fig5, args=(base_run.transactions,), rounds=2, iterations=1)
    save_result("fig5_nameservers_time", render_figure5(series, density))

    values = [v for _, v in series]
    assert values == sorted(values)
    # Diminishing returns: the last quarter adds less than the first.
    quarter = max(1, len(values) // 4)
    first_gain = values[quarter] - values[0]
    last_gain = values[-1] - values[-quarter - 1]
    assert last_gain < first_gain
    # Single-address /24s dominate (paper: 48%).
    assert density.get(1, 0) == max(density.values())
