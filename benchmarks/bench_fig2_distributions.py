"""Figure 2: traffic distributions for Top-k DNS objects.

Paper result: 94.9 % of traffic captured in the Top-100K nameserver
list; ~1 k nameservers (a tiny fraction of >1 M seen) handle 50 % of
all transactions; the NXDOMAIN CDF starts high at the top ranks
(botnet); the FQDN list captures only 23.2 %.
"""

from benchmarks.conftest import save_result
from repro.analysis.distributions import figure2, render_figure2


def test_fig2_traffic_distributions(benchmark, base_run):
    results = benchmark.pedantic(
        figure2, args=(base_run.obs,),
        kwargs={"datasets": ("srvip", "qname", "esld")},
        rounds=3, iterations=1)
    out = render_figure2(results)
    save_result("fig2_distributions", out)

    srvip = results["srvip"]
    # Shape assertions mirroring the paper.
    assert srvip.objects_for_share(0.5) < 0.25 * len(srvip.keys)
    assert results["qname"].capture_ratio() < srvip.capture_ratio()
    k = max(1, len(srvip.keys) // 20)
    assert srvip.share_of_top(k, "nxdomain") > 0.3
