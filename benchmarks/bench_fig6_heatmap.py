"""Figure 6: Hilbert space-filling-curve heatmap of nameserver IPv4s.

Paper result: a /24-granularity Hilbert map of all observed
authoritative nameserver addresses; most populated prefixes carry a
single address (blue pixels), i.e. the tail is widely dispersed.
"""

from benchmarks.conftest import save_result
from repro.analysis.heatmap import build_heatmap, render_figure6


def test_fig6_hilbert_heatmap(benchmark, base_run):
    heatmap = benchmark.pedantic(
        build_heatmap, args=(base_run.transactions,),
        kwargs={"order": 6}, rounds=2, iterations=1)
    save_result("fig6_heatmap", render_figure6(heatmap))

    assert heatmap.populated_prefixes > 100
    histogram = heatmap.prefix_density_histogram()
    # Grid conservation: every address lands somewhere.
    rows = heatmap.grid()
    assert sum(sum(r) for r in rows) == \
        sum(k * v for k, v in histogram.items())
