"""Shard transport codec: serialized bytes and encode/decode cost.

The sharded engine ships two payload kinds over its queues: upstream
transaction batches and downstream merged-window shard states.  This
bench measures both for the default-pickle transport and the binary
codec (line-block batches + protocol-5 out-of-band sketch buffers),
recording bytes per payload and per-transaction codec cost.

The headline acceptance number is the state-payload reduction: one
merged window of shard state must serialize to at most half the
default-pickle bytes.
"""

import pickle

import pytest

from benchmarks.conftest import base_scenario, save_result
from repro.observatory.pipeline import Observatory
from repro.observatory.transport import (
    decode_batch, encode_batch, pack_states, unpack_states)
from repro.simulation.sie import SieChannel

ALL_DATASETS = [("srvip", 2000), ("qname", 4000), ("esld", 2000),
                "qtype", "rcode", ("aafqdn", 2000)]


@pytest.fixture(scope="module")
def transaction_batch():
    scenario = base_scenario(duration=240.0, client_qps=150.0)
    return list(SieChannel(scenario).run())


@pytest.fixture(scope="module")
def shard_states(transaction_batch):
    """The states one worker ships at a cut: ingest the stream into a
    single-process Observatory with the shard state sink attached, so
    the flushed windows come out as ShardWindowState objects instead
    of being merged locally -- exactly the worker flush path."""
    obs = Observatory(datasets=ALL_DATASETS, use_bloom_gate=False,
                      keep_dumps=False)
    states = []
    obs.windows.state_sink = states.append
    obs.consume(transaction_batch)
    obs.windows.flush()
    assert states
    return states


def test_state_bytes_per_window(benchmark, shard_states):
    """Bytes on the wire for one cut's worth of shard states."""
    default_bytes = len(pickle.dumps(shard_states))

    def pack_unpack():
        payload, buffers = pack_states(shard_states)
        return unpack_states(payload, buffers)

    back = benchmark.pedantic(pack_unpack, rounds=5, iterations=1)
    assert len(back) == len(shard_states)
    payload, buffers = pack_states(shard_states)
    binary_bytes = len(payload) + sum(len(b) for b in buffers)
    ratio = default_bytes / binary_bytes
    windows = len(shard_states)
    save_result(
        "transport_state_bytes",
        "shard state payload (%d window states, %d txns ingested):\n"
        "  default pickle : %d bytes (%d/window)\n"
        "  binary codec   : %d bytes (%d/window, %d out-of-band buffers)\n"
        "  reduction      : %.2fx\n"
        "  binary pack+unpack round trip: %.1f ms"
        % (windows, sum(s.stats.get("seen", 0) for s in shard_states),
           default_bytes, default_bytes // windows,
           binary_bytes, binary_bytes // windows, len(buffers),
           ratio, benchmark.stats["mean"] * 1e3))
    assert binary_bytes * 2 <= default_bytes, \
        "binary states must be <= half the default-pickle bytes " \
        "(got %.2fx)" % ratio


def test_batch_encode_decode(benchmark, transaction_batch):
    """Upstream line-block codec: per-transaction cost and bytes."""
    batch = transaction_batch[:2000]
    pickle_bytes = len(pickle.dumps(batch))

    def roundtrip():
        return decode_batch(encode_batch(batch))

    back = benchmark.pedantic(roundtrip, rounds=5, iterations=1)
    assert len(back) == len(batch)
    assert back[0].ts == batch[0].ts
    line_bytes = len(encode_batch(batch))
    per_txn_ns = benchmark.stats["mean"] / len(batch) * 1e9
    save_result(
        "transport_batch_codec",
        "transaction batch codec (%d transactions):\n"
        "  default pickle : %d bytes\n"
        "  line block     : %d bytes (%.2fx)\n"
        "  encode+decode  : %d ns/txn"
        % (len(batch), pickle_bytes, line_bytes,
           pickle_bytes / line_bytes, per_txn_ns))
    # the batch codec trades bytes for zero worker-side object builds
    # on the coordinator; it only needs to be in the same ballpark
    assert line_bytes < 2 * pickle_bytes
