"""Table 4: detecting and classifying TTL changes (Section 4.2).

Paper result: 65 FQDNs with significant TTL changes over one week,
classified against DNSDB history: Non-conforming 17 (dynamic TTLs),
Renumbering 13, TTL Decrease 3, TTL Increase 1, Change NS 1,
Unknown 21.
"""

import pytest

from benchmarks.conftest import BenchRun, base_scenario, save_result
from repro.analysis.dnsdb import DnsdbStore
from repro.analysis.ttlchanges import (
    TtlChangeDetector,
    classify_events,
    render_table4,
    table4,
)
from repro.simulation.scenario import NsChange, Renumber, TtlChange

DURATION = 2400.0
EVENT_AT = 900.0


@pytest.fixture(scope="module")
def table4_run():
    from repro.simulation.buildout import build_global_dns

    params = dict(duration=DURATION, client_qps=100.0, n_slds=600,
                  popular_fqdns=800)
    # The NS-change target must receive NS queries in both epochs:
    # pick a top-ranked SLD from a deterministic probe buildout.
    probe = build_global_dns(base_scenario(**params))
    ns_target = probe.slds[1].name
    scenario = base_scenario(
        scripted_events=[
            # Renumbering with a TTL raise (the ns2.oh-isp.com case).
            Renumber(at=EVENT_AT, fqdn="www.xmsecu.com",
                     new_ips=("52.166.106.97",), new_ttl=38400),
            # Pure TTL decrease (the ns2.mtnbusiness.co.ke case).
            TtlChange(at=EVENT_AT, name="time-b.ntpsync.com", new_ttl=60),
            # Pure TTL increase (the ns2.whiteniledns.net case).
            TtlChange(at=EVENT_AT, name="ads.clickgrid.net", new_ttl=900),
            # NS + TTL change (the jia003.top case).
            NsChange(at=EVENT_AT, sld=ns_target,
                     new_ns_org="MICROSOFT", new_ttl=10),
        ],
        **params,
    )
    run = BenchRun(scenario, datasets=[("aafqdn", 2000)],
                   keep_transactions=True)
    dnsdb = DnsdbStore()
    for txn in run.transactions:
        dnsdb.observe_transaction(txn)
    return run, dnsdb


def _table4(obs_dumps, dnsdb):
    detector = TtlChangeDetector()
    for dump in obs_dumps:
        detector.observe_dump(dump)
    events = classify_events(detector.events, dnsdb)
    return table4(events)


def test_table4_ttl_change_classification(benchmark, table4_run):
    run, dnsdb = table4_run
    counts, per_fqdn = benchmark.pedantic(
        _table4, args=(run.obs.dumps["aafqdn"], dnsdb),
        rounds=2, iterations=1)
    save_result("table4_ttl_changes", render_table4(counts, per_fqdn))

    assert sum(counts.values()) >= 3
    # The dynamic-TTL domain must be flagged Non-conforming.
    non_conforming = [f for f, e in per_fqdn.items()
                      if e.category == "Non-conforming"]
    assert any("vicovoip" in f for f in non_conforming)
    # The scripted renumbering is classified as such.
    if "www.xmsecu.com" in per_fqdn:
        assert per_fqdn["www.xmsecu.com"].category == "Renumbering"
    # The pure TTL moves land in the TTL Decrease/Increase buckets.
    if "time-b.ntpsync.com" in per_fqdn:
        assert per_fqdn["time-b.ntpsync.com"].category == "TTL Decrease"
    if "ads.clickgrid.net" in per_fqdn:
        assert per_fqdn["ads.clickgrid.net"].category == "TTL Increase"
