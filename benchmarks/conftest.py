"""Shared fixtures for the benchmark harness.

``pytest benchmarks/ --benchmark-only`` reproduces every table and
figure of the paper: each bench times the analysis computation and
writes the rendered result to ``benchmarks/results/<name>.txt`` (the
numbers recorded in EXPERIMENTS.md come from these files).

The expensive part -- simulating the DNS and feeding the Observatory
-- happens once per scenario in session-scoped fixtures; the timed
portions are the per-experiment computations.
"""

import os

import pytest

from repro.observatory.pipeline import Observatory
from repro.simulation.scenario import Scenario
from repro.simulation.sie import SieChannel

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


class BenchRun:
    """One simulated run loaded into an Observatory."""

    def __init__(self, scenario, datasets, keep_transactions=True,
                 **obs_kw):
        self.scenario = scenario
        self.channel = SieChannel(scenario)
        obs_kw.setdefault("use_bloom_gate", False)
        self.obs = Observatory(datasets=datasets, **obs_kw)
        self.transactions = [] if keep_transactions else None
        for txn in self.channel.run():
            if self.transactions is not None:
                self.transactions.append(txn)
            self.obs.ingest(txn)
        self.obs.finish()

    @property
    def dns(self):
        return self.channel.dns

    def root_letter_ips(self):
        return {ns.hostname.split(".")[0]: ns.ip
                for ns in self.dns.root.nameservers}

    def gtld_letter_ips(self):
        return {ns.hostname.split(".")[0]: ns.ip
                for ns in self.dns.root.tlds["com"].nameservers}

    def negttl_lookup(self, fqdn):
        zone = self.dns.find_sld_zone(fqdn)
        return zone.soa_negttl if zone is not None else None

    @staticmethod
    def server_ips(nameservers):
        """All addresses (v4 + v6) of a nameserver group."""
        ips = set()
        for ns in nameservers:
            ips.add(ns.ip)
            if ns.ipv6:
                ips.add(ns.ipv6)
        return ips

    def root_server_ips(self):
        return self.server_ips(self.dns.root.nameservers)

    def tld_server_ips(self):
        return self.server_ips(
            ns for tld in self.dns.root.tlds.values()
            for ns in tld.nameservers)


def base_scenario(**overrides):
    params = dict(
        seed=2019, duration=900.0, client_qps=150.0, n_resolvers=48,
        n_contributors=10, n_tlds=80, n_slds=1200, fqdns_per_sld=4,
        popular_fqdns=1500, qmin_resolver_fraction=0.05,
    )
    params.update(overrides)
    return Scenario(**params)


@pytest.fixture(scope="session")
def base_run():
    """The main measurement run shared by most benches."""
    return BenchRun(
        base_scenario(),
        datasets=[("srvip", 2000), ("qname", 4000), ("esld", 2000),
                  "qtype", "rcode", ("aafqdn", 2000)],
    )


def measure_sharded_run(txns, shards, transport, datasets, **obs_kw):
    """One measured sharded ingest: wall time plus *worker* CPU time.

    Worker CPU comes from ``getrusage(RUSAGE_CHILDREN)`` deltas --
    the workers are joined during ``finish()``/``close()``, so their
    usage has been folded into the parent's children-counters by the
    time the measurement ends.  ``worker_utilization`` is the mean
    fraction of one core each worker kept busy; on a single-core box
    the whole run time-shares one CPU and utilization lands around
    ``1/shards`` even though the code would scale given real cores --
    which is exactly why throughput gates must look at the measured
    core count, not assume parallel hardware.
    """
    import resource
    import time

    from repro.observatory.sharded import ShardedObservatory

    before = resource.getrusage(resource.RUSAGE_CHILDREN)
    t0 = time.perf_counter()
    obs = ShardedObservatory(shards=shards, datasets=datasets,
                             transport=transport, keep_dumps=False,
                             **obs_kw)
    obs.consume(txns)
    obs.finish()
    wall = time.perf_counter() - t0
    after = resource.getrusage(resource.RUSAGE_CHILDREN)
    worker_cpu = ((after.ru_utime - before.ru_utime)
                  + (after.ru_stime - before.ru_stime))
    assert obs.total_seen == len(txns)
    return {
        "txn_per_s": round(len(txns) / wall, 1),
        "wall_s": round(wall, 3),
        "worker_cpu_s": round(worker_cpu, 3),
        "worker_utilization": round(worker_cpu / (shards * wall), 3),
    }


def save_result(name, text):
    """Persist a rendered table/figure under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "%s.txt" % name)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text.rstrip() + "\n")
    print("\n" + text)
    return path
