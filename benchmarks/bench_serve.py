"""Serving-layer benchmark: indexed warm-cache queries vs cold reads.

The point of :class:`~repro.observatory.store.SeriesStore` + the HTTP
API is that answering "top-k srvips now" must not re-parse the whole
output directory per question.  This bench quantifies that:

* **cold** -- the pre-store baseline: every query calls
  :func:`read_series` over the full directory and recomputes the
  ranking from scratch (parse every window file, every time);
* **warm** -- end-to-end HTTP queries (``/topk``, ``/series``) against
  a running :class:`~repro.server.http.ObservatoryServer` whose store
  LRU is warm, measured over a keep-alive connection;
* **index rebuild** -- opening the store with no manifest (full scan +
  first-parse) vs reopening with the persisted manifest;
* **bisected range lookup** -- the store's sorted-`start_ts` bisect
  select vs a linear ``window_overlaps`` scan of the same ref list,
  on a 50k-window index (a month of minutely windows);
* **streamed memory** -- peak tracemalloc-tracked bytes while a
  chunked ``/series`` response streams, for a 1-day vs a 30-day
  hourly span: streaming must make the peak a constant (LRU-bound),
  not a function of span length;
* **columnar segments** -- cold ``accumulate``/``topk`` over a
  10k-window directory with binary sidecar segments vs re-parsing
  the TSV text, with the answers required to be identical: the
  storage-engine-v2 gate.

Two entry points:

* ``pytest benchmarks/bench_serve.py --benchmark-only`` records the
  rates under ``benchmarks/results/``;
* ``python benchmarks/bench_serve.py --check`` exits nonzero unless
  warm ``/topk`` and ``/series`` beat the cold baseline by
  :data:`SPEEDUP_BOUND`, bisected range lookup beats the linear scan
  by :data:`BISECT_BOUND`, the 30-day streamed peak stays within
  :data:`MEMORY_FLAT_BOUND` of the 1-day one, and cold segment-backed
  ``accumulate``/``topk`` beats cold TSV re-parse by
  :data:`SEGMENT_BOUND` with identical answers -- the CI
  non-regression gates.
"""

import asyncio
import os
import shutil
import sys
import tempfile
import time
import tracemalloc

try:
    import pytest
except ImportError:  # pragma: no cover - script mode without pytest
    pytest = None

from repro.analysis.seriesops import accumulate_dumps, ranked_keys
from repro.observatory.store import MANIFEST_NAME, SeriesStore
from repro.observatory.tsv import (
    TimeSeriesData,
    filename_for,
    read_series,
    window_overlaps,
    write_tsv,
)
from repro.server import build_server

#: warm-cache HTTP queries must beat cold full-directory reads by this
SPEEDUP_BOUND = 10.0

#: bisected range select must beat the linear scan by this at 50k refs
BISECT_BOUND = 10.0

#: 30-day streamed /series peak memory vs 1-day: at most this ratio
MEMORY_FLAT_BOUND = 2.0

#: windows in the range-lookup index (a month of minutely windows)
INDEX_WINDOWS = 50000

#: cold segment-backed accumulate/topk must beat cold TSV re-parse by
#: this over the :data:`SEGMENT_WINDOWS` directory
SEGMENT_BOUND = 5.0

#: windows in the segment-vs-TSV fixture (a week of minutely windows)
SEGMENT_WINDOWS = 10000

SEGMENT_DATASET = "segd"
SEGMENT_KEYS = 40

#: int counters + genuinely-float gauges, as real windows hold them
SEGMENT_COLUMNS = ["hits", "ok", "nxd", "unans", "delay_q25",
                   "delay_q50", "delay_q75", "size_q50",
                   "ttl_top1_share"]

DATASET = "srvip"
WINDOWS = 48
KEYS = 150

#: the two hot endpoints under test (bounded answers, as clients use)
TOPK_TARGET = "/topk/%s?n=10" % DATASET
SERIES_TARGET = "/series/%s?limit=8" % DATASET


def build_fixture(directory, windows=WINDOWS, keys=KEYS):
    """Deterministic minutely series: *windows* files x *keys* rows."""
    for w in range(windows):
        rows = []
        for k in range(keys):
            hits = float((k * 37 + w * 11) % 997 + 1)
            rows.append(("192.0.%d.%d" % (k // 250, k % 250), {
                "hits": hits,
                "clients": round(hits / 7, 2),
                "bytes_rx": hits * 80,
                "bytes_tx": hits * 110,
                "nxdomains": float(k % 9),
            }))
        rows.sort(key=lambda kv: -kv[1]["hits"])
        write_tsv(directory, TimeSeriesData(
            DATASET, "minutely", w * 60,
            rows=rows, stats={"seen": keys * 4, "kept": keys}))
    return directory


# -- cold baseline ------------------------------------------------------

def cold_topk(directory, n=10):
    dumps = read_series(directory, DATASET)
    return ranked_keys(accumulate_dumps(dumps), by="hits")[:n]


def cold_series(directory, limit=8):
    return read_series(directory, DATASET)[-limit:]


def measure_cold(directory, queries=8):
    """Full-directory re-read per query: queries/second."""
    started = time.perf_counter()
    for i in range(queries):
        if i % 2:
            cold_series(directory)
        else:
            cold_topk(directory)
    return queries / (time.perf_counter() - started)


# -- warm HTTP path -----------------------------------------------------

async def _request(reader, writer, target):
    writer.write(("GET %s HTTP/1.1\r\nHost: bench\r\n\r\n"
                  % target).encode("ascii"))
    await writer.drain()
    status = int((await reader.readline()).split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if not line.rstrip():
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value)
    body = await reader.readexactly(length)
    return status, body


async def _measure_http(directory, target, queries):
    """Queries/second for *target* over one keep-alive connection."""
    server, app = await build_server(directory, port=0, cache_windows=512)
    try:
        reader, writer = await asyncio.open_connection(server.host,
                                                       server.port)
        try:
            # warm-up: populate the index and the parsed-window LRU
            for warm_target in (TOPK_TARGET, SERIES_TARGET, target):
                status, _ = await _request(reader, writer, warm_target)
                assert status == 200, status
            started = time.perf_counter()
            for _ in range(queries):
                status, body = await _request(reader, writer, target)
                assert status == 200 and body, status
            elapsed = time.perf_counter() - started
        finally:
            writer.close()
    finally:
        server.begin_shutdown()
        await server.wait_closed()
    return queries / elapsed


def measure_warm(directory, target, queries=100):
    return asyncio.run(_measure_http(directory, target, queries))


# -- index rebuild ------------------------------------------------------

def measure_rebuild(directory):
    """(cold_rebuild_s, manifest_open_s): full scan vs manifest reopen."""
    manifest = os.path.join(directory, MANIFEST_NAME)
    if os.path.exists(manifest):
        os.remove(manifest)
    started = time.perf_counter()
    store = SeriesStore(directory)
    store.read(DATASET)  # learn row counts/stats the manifest persists
    cold_s = time.perf_counter() - started
    store.flush_manifest()
    started = time.perf_counter()
    SeriesStore(directory).datasets()
    warm_s = time.perf_counter() - started
    return cold_s, warm_s


# -- bisected range lookup vs linear scan -------------------------------

def build_ref_index(directory, windows=INDEX_WINDOWS):
    """A *windows*-ref index over zero-byte files: range selection
    never opens a file, so the fixture only needs the names."""
    for w in range(windows):
        path = os.path.join(
            directory, filename_for("big", "minutely", w * 60))
        with open(path, "w"):
            pass
    return SeriesStore(directory, manifest=False)


def measure_range_lookup(store, dataset="big", queries=50):
    """(bisect_qps, linear_qps) for narrow range queries over the
    same sorted ref list."""
    refs = store.select(dataset)  # one up-front sort, as in serving
    span = refs[-1].start_ts + 60
    ranges = [(i * span // queries, i * span // queries + 600)
              for i in range(queries)]

    started = time.perf_counter()
    for start_ts, end_ts in ranges:
        store.select(dataset, "minutely", start_ts, end_ts)
    bisect_qps = queries / (time.perf_counter() - started)

    # the pre-index baseline: every query scans every ref
    linear_queries = ranges[:10]
    started = time.perf_counter()
    for start_ts, end_ts in linear_queries:
        [ref for ref in refs
         if window_overlaps("minutely", ref.start_ts, start_ts, end_ts)]
    linear_qps = len(linear_queries) / (time.perf_counter() - started)
    return bisect_qps, linear_qps


# -- streamed /series memory --------------------------------------------


STREAM_DATASET = "span"
STREAM_KEYS = 150


def build_span_fixture(directory, days=30):
    """Hourly windows covering *days* days: the long-span fixture the
    streaming path must serve in constant memory."""
    for w in range(days * 24):
        rows = [("10.0.%d.%d" % (k // 250, k % 250),
                 {"hits": float((k * 13 + w * 7) % 501 + 1),
                  "bytes_rx": float(k + w),
                  "nxdomains": float(k % 5)})
                for k in range(STREAM_KEYS)]
        write_tsv(directory, TimeSeriesData(
            STREAM_DATASET, "hourly", w * 3600,
            columns=["hits", "bytes_rx", "nxdomains"], rows=rows,
            stats={"seen": STREAM_KEYS * 2, "kept": STREAM_KEYS}))
    return directory


async def _drain_chunked(reader):
    """Read one chunked response, discarding the body; returns bytes."""
    head = await reader.readuntil(b"\r\n\r\n")
    assert b"200" in head.split(b"\r\n", 1)[0], head
    assert b"chunked" in head.lower(), head
    total = 0
    while True:
        size = int((await reader.readline()).strip(), 16)
        if size == 0:
            await reader.readline()
            return total
        await reader.readexactly(size + 2)  # chunk + CRLF
        total += size


async def _stream_peak(directory, target):
    """Peak tracemalloc bytes while *target* streams to completion.

    The first pass warms the index metadata (per-ref row counts and
    stats learned on first parse, which the manifest retains by
    design and which scale with the span); the measured second pass
    shows what streaming itself holds: one in-flight window plus the
    bounded LRU, regardless of span length.
    """
    server, app = await build_server(directory, port=0,
                                     stream_threshold=0,
                                     cache_windows=16)

    async def one_request():
        reader, writer = await asyncio.open_connection(server.host,
                                                       server.port)
        try:
            writer.write(("GET %s HTTP/1.1\r\nHost: bench\r\n"
                          "Connection: close\r\n\r\n"
                          % target).encode("ascii"))
            await writer.drain()
            return await _drain_chunked(reader)
        finally:
            writer.close()

    try:
        await one_request()  # warm pass: learn ref metadata
        tracemalloc.start()
        try:
            body_bytes = await one_request()
            peak = tracemalloc.get_traced_memory()[1]
        finally:
            tracemalloc.stop()
    finally:
        server.begin_shutdown()
        await server.wait_closed()
    return peak, body_bytes


def measure_stream_memory(directory):
    """((1-day peak, bytes), (30-day peak, bytes)) for streamed
    /series over the hourly span fixture."""
    day = asyncio.run(_stream_peak(
        directory,
        "/series/%s?granularity=hourly&end=86400" % STREAM_DATASET))
    month = asyncio.run(_stream_peak(
        directory, "/series/%s?granularity=hourly" % STREAM_DATASET))
    return day, month


# -- columnar segments vs TSV re-parse ----------------------------------

def build_segment_fixture(directory, windows=SEGMENT_WINDOWS,
                          keys=SEGMENT_KEYS):
    """*windows* minutely files with sidecar segments built.

    The gauge columns are genuine non-integral floats -- what real
    windows hold, and the cells where the text parse is slowest
    (:func:`~repro.observatory.tsv._parse` pays a raised ``ValueError``
    per float).  Rows are emitted in stable key order -- the clustered
    layout a compacted store converges to -- so the segment
    accumulate's same-key-tuple run batching engages, exactly as it
    would over a steady top-k population.
    """
    from repro.observatory.aggregate import TimeAggregator

    for w in range(windows):
        rows = []
        for k in range(keys):
            hits = (k * 37 + w * 11) % 997 + 1
            rows.append(("198.51.%d.%d" % (k // 250, k % 250), {
                "hits": hits,
                "ok": hits - k % 7,
                "nxd": k % 9,
                "unans": (k + w) % 5,
                "delay_q25": round(4.03 + ((k * 5 + w) % 60) / 8.0, 4),
                "delay_q50": round(10.03 + ((k * 3 + w) % 40) / 4.0, 4),
                "delay_q75": round(25.03 + ((k * 7 + w) % 80) / 2.0, 4),
                "size_q50": round(80.03 + ((k + w * 3) % 300) / 3.0, 4),
                "ttl_top1_share": round(((k * 11 + w) % 97 + 1) / 100.0,
                                        4),
            }))
        write_tsv(directory, TimeSeriesData(
            SEGMENT_DATASET, "minutely", w * 60,
            columns=list(SEGMENT_COLUMNS), rows=rows,
            stats={"seen": keys * 3, "kept": keys}))
    TimeAggregator(directory).compact()
    return directory


def _snap_rows(rows):
    """Comparable snapshot of an accumulate answer (values + window
    counters), so 'identical' means identical, not just dict-equal."""
    return {key: (row.windows, dict(row))
            for key, row in rows.items()}


def measure_segment_cold(directory, use_segments):
    """One cold accumulate + one cold topk with fresh stores.

    Returns ``(snapshot, top, seconds, store)`` -- the second store is
    returned so the caller can check *how* the answer was computed
    (segment scans vs text parses)."""
    store = SeriesStore(directory, cache_windows=0, manifest=False,
                        use_segments=use_segments)
    started = time.perf_counter()
    rows = store.accumulate(SEGMENT_DATASET)
    elapsed = time.perf_counter() - started
    store = SeriesStore(directory, cache_windows=0, manifest=False,
                        use_segments=use_segments)
    started = time.perf_counter()
    top = store.topk(SEGMENT_DATASET, n=10)
    elapsed += time.perf_counter() - started
    return _snap_rows(rows), top, elapsed, store


def check_segments(bound=SEGMENT_BOUND, windows=SEGMENT_WINDOWS,
                   directory=None):
    """Cold segment reads must beat cold TSV re-parse; (ok, report)."""
    tmp = None
    if directory is None:
        tmp = tempfile.mkdtemp(prefix="bench-segments-")
        directory = build_segment_fixture(tmp, windows=windows)
    try:
        tsv_rows, tsv_top, tsv_s, tsv_store = \
            measure_segment_cold(directory, use_segments=False)
        seg_rows, seg_top, seg_s, seg_store = \
            measure_segment_cold(directory, use_segments=True)
        identical = tsv_rows == seg_rows and tsv_top == seg_top
        # the segment run must actually have scanned segments, and the
        # TSV run must actually have parsed text
        honest = (seg_store.segment_reads == windows
                  and seg_store.parses == 0
                  and tsv_store.parses == windows)
        speedup = tsv_s / seg_s if seg_s else float("inf")
        report = (
            "segment bench (%d windows x %d keys x %d cols): cold TSV "
            "accumulate+topk %.2f s, cold segment %.2f s -> %.1fx "
            "(bound %.0fx), answers %s, %d segment reads / %d parses"
            % (windows, SEGMENT_KEYS, len(SEGMENT_COLUMNS),
               tsv_s, seg_s, speedup, bound,
               "identical" if identical else "DIFFER",
               seg_store.segment_reads, seg_store.parses))
        return speedup >= bound and identical and honest, report
    finally:
        if tmp is not None:
            shutil.rmtree(tmp, ignore_errors=True)


# -- the CI gate --------------------------------------------------------

def check_speedup(directory=None, bound=SPEEDUP_BOUND):
    """Measure cold vs warm; returns (ok, report)."""
    tmp = None
    if directory is None:
        tmp = tempfile.mkdtemp(prefix="bench-serve-")
        directory = build_fixture(tmp)
    try:
        cold_qps = measure_cold(directory)
        topk_qps = measure_warm(directory, TOPK_TARGET)
        series_qps = measure_warm(directory, SERIES_TARGET)
        rebuild_s, reopen_s = measure_rebuild(directory)
        speedup_topk = topk_qps / cold_qps
        speedup_series = series_qps / cold_qps
        report = (
            "serve bench (%d windows x %d keys): cold %.1f q/s, warm "
            "/topk %.0f q/s (%.0fx), warm /series %.0f q/s (%.0fx), "
            "index rebuild %.1f ms cold / %.1f ms with manifest "
            "(bound %.0fx)"
            % (WINDOWS, KEYS, cold_qps, topk_qps, speedup_topk,
               series_qps, speedup_series, rebuild_s * 1e3,
               reopen_s * 1e3, bound))
        ok = speedup_topk >= bound and speedup_series >= bound
        return ok, report
    finally:
        if tmp is not None:
            shutil.rmtree(tmp, ignore_errors=True)


def check_bisect(bound=BISECT_BOUND, windows=INDEX_WINDOWS):
    """Bisected range select must beat the linear scan; (ok, report)."""
    tmp = tempfile.mkdtemp(prefix="bench-bisect-")
    try:
        store = build_ref_index(tmp, windows=windows)
        bisect_qps, linear_qps = measure_range_lookup(store)
        speedup = bisect_qps / linear_qps
        report = (
            "range-lookup bench (%d-window manifest): bisect %.0f q/s, "
            "linear scan %.1f q/s -> %.0fx (bound %.0fx)"
            % (windows, bisect_qps, linear_qps, speedup, bound))
        return speedup >= bound, report
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def check_stream_memory(bound=MEMORY_FLAT_BOUND):
    """Streamed /series peak memory must be span-independent."""
    tmp = tempfile.mkdtemp(prefix="bench-stream-")
    try:
        build_span_fixture(tmp, days=30)
        (day_peak, day_bytes), (month_peak, month_bytes) = \
            measure_stream_memory(tmp)
        ratio = month_peak / day_peak if day_peak else float("inf")
        report = (
            "streamed /series memory: 1-day span %.0f KiB body, "
            "%.0f KiB peak; 30-day span %.0f KiB body, %.0f KiB peak "
            "-> %.2fx peak for %.0fx body (bound %.1fx)"
            % (day_bytes / 1024, day_peak / 1024, month_bytes / 1024,
               month_peak / 1024, ratio,
               month_bytes / day_bytes if day_bytes else 0, bound))
        # sanity: the long span really is much bigger on the wire
        ok = ratio <= bound and month_bytes >= 10 * day_bytes
        return ok, report
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


if pytest is not None:

    @pytest.fixture(scope="module")
    def series_dir(tmp_path_factory):
        return build_fixture(str(tmp_path_factory.mktemp("serve")))

    def test_cold_read_rate(benchmark, series_dir):
        from benchmarks.conftest import save_result

        benchmark.pedantic(lambda: measure_cold(series_dir, queries=2),
                           rounds=3, iterations=1)
        qps = measure_cold(series_dir)
        save_result("serve_cold",
                    "cold full-directory read: %.1f queries/s" % qps)

    @pytest.mark.parametrize("target", [TOPK_TARGET, SERIES_TARGET],
                             ids=["topk", "series"])
    def test_warm_http_rate(benchmark, series_dir, target):
        from benchmarks.conftest import save_result

        qps = benchmark.pedantic(
            lambda: measure_warm(series_dir, target, queries=50),
            rounds=3, iterations=1)
        save_result("serve_warm_%s" % target.split("/")[1].split("?")[0],
                    "warm HTTP %s: %.0f queries/s" % (target, qps))

    def test_index_rebuild_cost(series_dir):
        from benchmarks.conftest import save_result

        cold_s, warm_s = measure_rebuild(series_dir)
        save_result("serve_rebuild",
                    "index rebuild: %.1f ms cold scan, %.1f ms manifest "
                    "reopen" % (cold_s * 1e3, warm_s * 1e3))
        assert warm_s <= cold_s * 2  # manifest reopen must not regress

    def test_warm_speedup_within_bound(series_dir):
        cold_qps = measure_cold(series_dir, queries=4)
        # Halve the CI bound for the in-suite assertion: shared runners
        # are noisy, and the hard gate is the --check entry point.
        for target in (TOPK_TARGET, SERIES_TARGET):
            qps = measure_warm(series_dir, target, queries=50)
            assert qps >= cold_qps * SPEEDUP_BOUND / 2, \
                "%s only %.1fx faster than cold" % (target,
                                                    qps / cold_qps)

    def test_bisect_beats_linear_scan(tmp_path):
        from benchmarks.conftest import save_result

        # a smaller index than the --check gate keeps the suite quick;
        # the speedup grows with index size, so this bound is safe
        ok, report = check_bisect(bound=BISECT_BOUND / 2, windows=5000)
        save_result("serve_bisect", report)
        assert ok, report

    def test_streamed_series_memory_flat(tmp_path):
        from benchmarks.conftest import save_result

        ok, report = check_stream_memory()
        save_result("serve_stream_memory", report)
        assert ok, report

    def test_segments_beat_tsv_reparse(tmp_path):
        from benchmarks.conftest import save_result

        # a smaller fixture than the --check gate keeps the suite
        # quick; the speedup grows with window count, so halving the
        # bound is safe headroom for shared runners
        ok, report = check_segments(bound=SEGMENT_BOUND / 2,
                                    windows=1500)
        save_result("serve_segments", report)
        assert ok, report


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    if "--check" not in argv:
        print("usage: python benchmarks/bench_serve.py --check",
              file=sys.stderr)
        return 2
    failures = 0
    for gate in (check_speedup, check_bisect, check_stream_memory,
                 check_segments):
        ok, report = gate()
        print(report)
        if not ok:
            failures += 1
            print("FAIL: %s" % gate.__name__, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
