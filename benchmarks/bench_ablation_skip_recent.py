"""Ablation: the survived-one-window dump rule (Section 2.4).

"We skip the data from objects recently inserted in the SS cache" --
an object must survive eviction for a full 60 s window before its
statistics are dumped.  Disabling the rule floods the dumps with
one-off keys that churned through the cache mid-window; the rows per
window grow while the *stable* top of the list is unchanged.
"""

import pytest

from benchmarks.conftest import base_scenario, save_result
from repro.analysis.tables import format_table
from repro.observatory.pipeline import Observatory
from repro.simulation.sie import SieChannel


@pytest.fixture(scope="module")
def batch():
    scenario = base_scenario(duration=300.0, client_qps=120.0)
    return list(SieChannel(scenario).run())


def _run(batch, skip_recent):
    obs = Observatory(datasets=[("qname", 800)], use_bloom_gate=False,
                      skip_recent_inserts=skip_recent)
    obs.consume(batch)
    obs.finish()
    dumps = obs.dumps["qname"][1:]  # ignore the cold-start window
    rows_per_window = [len(d) for d in dumps] or [0]
    top_keys = [set(k for k, _ in sorted(
        d.rows, key=lambda kv: -kv[1].get("hits", 0))[:20]) for d in dumps]
    return rows_per_window, top_keys


def test_ablation_skip_recent_inserts(benchmark, batch):
    strict_rows, strict_top = benchmark.pedantic(
        _run, args=(batch, True), rounds=2, iterations=1)
    loose_rows, loose_top = _run(batch, False)
    mean_strict = sum(strict_rows) / len(strict_rows)
    mean_loose = sum(loose_rows) / len(loose_rows)
    overlap = [len(a & b) / 20 for a, b in zip(strict_top, loose_top)]
    mean_overlap = sum(overlap) / len(overlap) if overlap else 1.0
    save_result("ablation_skip_recent", format_table(
        ["variant", "rows/window"],
        [("skip recent (paper)", "%.0f" % mean_strict),
         ("dump everything", "%.0f" % mean_loose)],
        title="Ablation: survived-one-window rule (qname, k=800)")
        + "\ntop-20 overlap between variants: %.2f" % mean_overlap)

    # The rule prunes churn without touching the stable top.
    assert mean_strict <= mean_loose
    assert mean_overlap > 0.7
