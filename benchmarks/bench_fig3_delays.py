"""Figure 3: response delays and network hops.

Paper result: delay CDF splits into 0-5 / 5-35 / 35-350 / >350 ms
regimes (3.1 / 22.3 / 71.5 / 2.3 % of nameservers); the top-10K
nameservers respond faster and sit fewer hops away; root letters vary
(E/F/L fastest), roots are 96.2 % NXDOMAIN; gTLD letters cluster, B is
fastest, 26.4 % NXDOMAIN.
"""

from benchmarks.conftest import save_result
from repro.analysis.delays import (
    delay_cdf,
    hierarchy_shares,
    letter_stats,
    popularity_speed_correlation,
    rank_vs_delay,
    render_figure3,
)


def _figure3(obs, root_ips, gtld_ips):
    return (
        delay_cdf(obs),
        rank_vs_delay(obs, group_size=100),
        letter_stats(obs, root_ips),
        letter_stats(obs, gtld_ips),
        hierarchy_shares(obs, root_ips),
        hierarchy_shares(obs, gtld_ips),
    )


def test_fig3_response_delays(benchmark, base_run):
    root_ips = base_run.root_letter_ips()
    gtld_ips = base_run.gtld_letter_ips()
    (cdf, groups, root_stats, gtld_stats, root_sh,
     gtld_sh) = benchmark.pedantic(
        _figure3, args=(base_run.obs, root_ips, gtld_ips),
        rounds=3, iterations=1)
    save_result("fig3_delays", render_figure3(
        cdf, groups, root_stats, gtld_stats, root_sh, gtld_sh))

    delays, shares = cdf
    assert shares[2] == max(shares)          # distant dominates
    # The paper's Fig 3b pattern: the most popular nameservers are
    # faster and closer than the tail.
    tail = groups[-3:]
    assert groups[0][1] < 0.7 * sum(d for _, d, _ in tail) / len(tail)
    assert groups[0][2] < sum(h for _, _, h in tail) / len(tail)
    assert popularity_speed_correlation(groups) > 0.45
    assert root_sh["nxd_share"] > 0.3         # roots eat junk TLDs
    assert gtld_sh["nxd_share"] > 0.15        # gTLDs eat the botnet
    assert len(root_stats) == 13 and len(gtld_stats) == 13
    by_letter = {s.letter: s for s in gtld_stats}
    others = [s.delay_q50 for s in gtld_stats if s.letter != "b"]
    assert by_letter["b"].delay_q50 <= min(others) * 1.2  # B fastest
