"""Ablation: HyperLogLog precision vs cardinality accuracy.

Section 2.3 estimates large value-set cardinalities (qnamesa, ip4s,
...) with HyperLogLog.  The register-count exponent p trades memory
(2^p bytes per feature per tracked object) against error
(~1.04/sqrt(2^p)).  This bench measures the realized error of the
qnamesa feature against the exact distinct-QNAME count per precision.
"""

import pytest

from benchmarks.conftest import base_scenario, save_result
from repro.analysis.tables import format_table
from repro.sketches.hyperloglog import HyperLogLog
from repro.simulation.sie import SieChannel


@pytest.fixture(scope="module")
def qnames():
    scenario = base_scenario(duration=240.0, client_qps=120.0)
    return [t.qname for t in SieChannel(scenario).run()]


def _estimate(qnames, precision):
    hll = HyperLogLog(precision=precision)
    for qname in qnames:
        hll.add(qname)
    return hll.cardinality()


def test_ablation_hll_precision(benchmark, qnames):
    exact = len(set(qnames))
    precisions = (6, 8, 10, 12, 14)
    rows = []
    errors = {}
    for p in precisions:
        if p == 8:
            est = benchmark.pedantic(_estimate, args=(qnames, p),
                                     rounds=2, iterations=1)
        else:
            est = _estimate(qnames, p)
        err = abs(est - exact) / exact
        errors[p] = err
        rows.append((p, 1 << p, int(est), "%.2f%%" % (err * 100),
                     "%.2f%%" % (104.0 / (1 << p) ** 0.5)))
    save_result("ablation_hll_precision", format_table(
        ["p", "registers", "estimate", "error", "theory 1sigma"],
        rows, title="Ablation: HLL precision (exact=%d qnames)" % exact))

    # Error at the production default (p=8) stays within ~4 sigma.
    assert errors[8] < 4 * 1.04 / (1 << 8) ** 0.5
    # Higher precision does not do worse by an order of magnitude.
    assert errors[14] < 0.05
