"""Platform throughput: transactions/second through the pipeline.

The paper's deployment ingests a peak of 200 k transactions/second (in
compiled code, across machines).  This bench measures what the pure-
Python pipeline sustains for (a) the Top-k tracking core alone and
(b) the full Observatory with all datasets -- the numbers that justify
the scale map in DESIGN.md.
"""

import os

import pytest

from benchmarks.conftest import (
    base_scenario,
    measure_sharded_run,
    save_result,
)
from repro.observatory.pipeline import Observatory
from repro.observatory.sharded import ShardedObservatory
from repro.simulation.sie import SieChannel

ALL_DATASETS = [("srvip", 2000), ("qname", 4000), ("esld", 2000),
                "qtype", "rcode", ("aafqdn", 2000)]

CORES = os.cpu_count() or 1


@pytest.fixture(scope="module")
def transaction_batch():
    scenario = base_scenario(duration=240.0, client_qps=150.0)
    return list(SieChannel(scenario).run())


def test_throughput_srvip_only(benchmark, transaction_batch):
    def ingest():
        obs = Observatory(datasets=[("srvip", 2000)], use_bloom_gate=False)
        obs.consume(transaction_batch)
        obs.finish()
        return obs

    obs = benchmark.pedantic(ingest, rounds=3, iterations=1)
    rate = len(transaction_batch) / benchmark.stats["mean"]
    save_result("throughput_srvip", "srvip-only pipeline: %d txn/s "
                "(%d transactions)" % (rate, len(transaction_batch)))
    assert obs.total_seen == len(transaction_batch)
    assert rate > 3000  # sanity floor for pure Python


def test_throughput_all_datasets(benchmark, transaction_batch):
    def ingest():
        obs = Observatory(datasets=ALL_DATASETS, use_bloom_gate=False)
        obs.consume(transaction_batch)
        obs.finish()
        return obs

    benchmark.pedantic(ingest, rounds=2, iterations=1)
    rate = len(transaction_batch) / benchmark.stats["mean"]
    save_result("throughput_all", "all-datasets pipeline: %d txn/s "
                "(%d transactions)" % (rate, len(transaction_batch)))
    assert rate > 1000


@pytest.mark.parametrize("transport", ["pickle", "binary", "ring"])
@pytest.mark.parametrize("shards", [2, 4])
def test_throughput_sharded(benchmark, transaction_batch, shards,
                            transport):
    """All-datasets ingest through N worker processes, for every shard
    transport (default pickle, the binary line-block/out-of-band
    codec, and the shared-memory ring).

    Instead of asserting a hoped-for speedup behind a core-count
    guess, this records what actually happened: the measured speedup
    over single-process ingest and the per-worker CPU utilization
    (``RUSAGE_CHILDREN`` deltas over shards x wall time).  The speedup
    gate only applies where real parallelism exists (>= 2 cores); a
    single-core container time-shares everything and the honest report
    is the deliverable.
    """
    def ingest():
        obs = ShardedObservatory(shards=shards, datasets=ALL_DATASETS,
                                 use_bloom_gate=False, keep_dumps=False,
                                 transport=transport)
        obs.consume(transaction_batch)
        obs.finish()
        return obs

    obs = benchmark.pedantic(ingest, rounds=2, iterations=1)
    assert obs.total_seen == len(transaction_batch)
    rate = len(transaction_batch) / benchmark.stats["mean"]
    measured = measure_sharded_run(
        transaction_batch, shards, transport, ALL_DATASETS,
        use_bloom_gate=False)
    single_rate = _single_process_rate(transaction_batch)
    speedup = measured["txn_per_s"] / single_rate
    name = ("throughput_sharded_%d" % shards if transport == "pickle"
            else "throughput_sharded_%d_%s" % (shards, transport))
    save_result(
        name,
        "sharded pipeline (%d workers, %s transport, %d cpu cores): "
        "%d txn/s (%d transactions)\n"
        "  single-process baseline %d txn/s -> measured speedup %.2fx\n"
        "  per-worker utilization %.0f%% (%.1fs worker CPU over %.1fs "
        "wall)" % (
            shards, transport, CORES, rate, len(transaction_batch),
            single_rate, speedup,
            100 * measured["worker_utilization"],
            measured["worker_cpu_s"], measured["wall_s"]))
    if CORES >= 2:
        # With real parallelism available, sharding must pay for its
        # transport overhead; the full 2x bar needs a core per worker
        # plus headroom for the coordinator.
        floor = 2.0 if CORES >= 2 * shards else 1.1
        assert speedup >= floor, \
            "expected >=%.1fx single-process throughput on %d cores, " \
            "measured %.2fx" % (floor, CORES, speedup)


def _single_process_rate(transaction_batch):
    import time

    obs = Observatory(datasets=ALL_DATASETS, use_bloom_gate=False,
                      keep_dumps=False)
    t0 = time.perf_counter()
    obs.consume(transaction_batch)
    obs.finish()
    return len(transaction_batch) / (time.perf_counter() - t0)


def test_throughput_simulation(benchmark):
    def simulate():
        scenario = base_scenario(duration=120.0, client_qps=150.0)
        return len(list(SieChannel(scenario).run()))

    count = benchmark.pedantic(simulate, rounds=2, iterations=1)
    rate = count / benchmark.stats["mean"]
    save_result("throughput_simulation",
                "simulator: %d txn/s (%d transactions)" % (rate, count))
    assert count > 1000
