"""Platform throughput: transactions/second through the pipeline.

The paper's deployment ingests a peak of 200 k transactions/second (in
compiled code, across machines).  This bench measures what the pure-
Python pipeline sustains for (a) the Top-k tracking core alone and
(b) the full Observatory with all datasets -- the numbers that justify
the scale map in DESIGN.md.
"""

import pytest

from benchmarks.conftest import base_scenario, save_result
from repro.observatory.pipeline import Observatory
from repro.simulation.sie import SieChannel


@pytest.fixture(scope="module")
def transaction_batch():
    scenario = base_scenario(duration=240.0, client_qps=150.0)
    return list(SieChannel(scenario).run())


def test_throughput_srvip_only(benchmark, transaction_batch):
    def ingest():
        obs = Observatory(datasets=[("srvip", 2000)], use_bloom_gate=False)
        obs.consume(transaction_batch)
        obs.finish()
        return obs

    obs = benchmark.pedantic(ingest, rounds=3, iterations=1)
    rate = len(transaction_batch) / benchmark.stats["mean"]
    save_result("throughput_srvip", "srvip-only pipeline: %d txn/s "
                "(%d transactions)" % (rate, len(transaction_batch)))
    assert obs.total_seen == len(transaction_batch)
    assert rate > 3000  # sanity floor for pure Python


def test_throughput_all_datasets(benchmark, transaction_batch):
    def ingest():
        obs = Observatory(
            datasets=[("srvip", 2000), ("qname", 4000), ("esld", 2000),
                      "qtype", "rcode", ("aafqdn", 2000)],
            use_bloom_gate=False)
        obs.consume(transaction_batch)
        obs.finish()
        return obs

    benchmark.pedantic(ingest, rounds=2, iterations=1)
    rate = len(transaction_batch) / benchmark.stats["mean"]
    save_result("throughput_all", "all-datasets pipeline: %d txn/s "
                "(%d transactions)" % (rate, len(transaction_batch)))
    assert rate > 1000


def test_throughput_simulation(benchmark):
    def simulate():
        scenario = base_scenario(duration=120.0, client_qps=150.0)
        return len(list(SieChannel(scenario).run()))

    count = benchmark.pedantic(simulate, rounds=2, iterations=1)
    rate = count / benchmark.stats["mean"]
    save_result("throughput_simulation",
                "simulator: %d txn/s (%d transactions)" % (rate, count))
    assert count > 1000
