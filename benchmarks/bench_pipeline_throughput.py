"""Platform throughput: transactions/second through the pipeline.

The paper's deployment ingests a peak of 200 k transactions/second (in
compiled code, across machines).  This bench measures what the pure-
Python pipeline sustains for (a) the Top-k tracking core alone and
(b) the full Observatory with all datasets -- the numbers that justify
the scale map in DESIGN.md.
"""

import os

import pytest

from benchmarks.conftest import base_scenario, save_result
from repro.observatory.pipeline import Observatory
from repro.observatory.sharded import ShardedObservatory
from repro.simulation.sie import SieChannel

ALL_DATASETS = [("srvip", 2000), ("qname", 4000), ("esld", 2000),
                "qtype", "rcode", ("aafqdn", 2000)]

CORES = os.cpu_count() or 1


@pytest.fixture(scope="module")
def transaction_batch():
    scenario = base_scenario(duration=240.0, client_qps=150.0)
    return list(SieChannel(scenario).run())


def test_throughput_srvip_only(benchmark, transaction_batch):
    def ingest():
        obs = Observatory(datasets=[("srvip", 2000)], use_bloom_gate=False)
        obs.consume(transaction_batch)
        obs.finish()
        return obs

    obs = benchmark.pedantic(ingest, rounds=3, iterations=1)
    rate = len(transaction_batch) / benchmark.stats["mean"]
    save_result("throughput_srvip", "srvip-only pipeline: %d txn/s "
                "(%d transactions)" % (rate, len(transaction_batch)))
    assert obs.total_seen == len(transaction_batch)
    assert rate > 3000  # sanity floor for pure Python


def test_throughput_all_datasets(benchmark, transaction_batch):
    def ingest():
        obs = Observatory(datasets=ALL_DATASETS, use_bloom_gate=False)
        obs.consume(transaction_batch)
        obs.finish()
        return obs

    benchmark.pedantic(ingest, rounds=2, iterations=1)
    rate = len(transaction_batch) / benchmark.stats["mean"]
    save_result("throughput_all", "all-datasets pipeline: %d txn/s "
                "(%d transactions)" % (rate, len(transaction_batch)))
    assert rate > 1000


@pytest.mark.parametrize("transport", ["pickle", "binary"])
@pytest.mark.parametrize("shards", [2, 4])
def test_throughput_sharded(benchmark, transaction_batch, shards,
                            transport):
    """All-datasets ingest through N worker processes, for both shard
    transports (default pickle vs the binary line-block/out-of-band
    codec).

    The >= 2x-over-single-process criterion only makes sense with
    real parallelism; on a single-core container the workers time-
    share one CPU and the bench records the (honest) overhead instead,
    so the speedup assertion is gated on the available core count.
    """
    def ingest():
        obs = ShardedObservatory(shards=shards, datasets=ALL_DATASETS,
                                 use_bloom_gate=False, keep_dumps=False,
                                 transport=transport)
        obs.consume(transaction_batch)
        obs.finish()
        return obs

    obs = benchmark.pedantic(ingest, rounds=2, iterations=1)
    assert obs.total_seen == len(transaction_batch)
    rate = len(transaction_batch) / benchmark.stats["mean"]
    name = ("throughput_sharded_%d" % shards if transport == "pickle"
            else "throughput_sharded_%d_%s" % (shards, transport))
    save_result(
        name,
        "sharded pipeline (%d workers, %s transport, %d cpu cores): "
        "%d txn/s (%d transactions)" % (shards, transport, CORES, rate,
                                        len(transaction_batch)))
    if CORES >= 2 * shards:
        single_rate = _single_process_rate(transaction_batch)
        assert rate >= 2 * single_rate, \
            "expected >=2x single-process throughput on %d cores" % CORES


def _single_process_rate(transaction_batch):
    import time

    obs = Observatory(datasets=ALL_DATASETS, use_bloom_gate=False,
                      keep_dumps=False)
    t0 = time.perf_counter()
    obs.consume(transaction_batch)
    obs.finish()
    return len(transaction_batch) / (time.perf_counter() - t0)


def test_throughput_simulation(benchmark):
    def simulate():
        scenario = base_scenario(duration=120.0, client_qps=150.0)
        return len(list(SieChannel(scenario).run()))

    count = benchmark.pedantic(simulate, rounds=2, iterations=1)
    rate = count / benchmark.stats["mean"]
    save_result("throughput_simulation",
                "simulator: %d txn/s (%d transactions)" % (rate, count))
    assert count > 1000
