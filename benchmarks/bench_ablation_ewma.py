"""Ablation: decay constant of the Space-Saving rate estimates.

The paper tracks "an exponentially decaying moving average" per
object.  The decay constant tau trades responsiveness for stability:
tiny tau lets short bursts displace steady heavy hitters; huge tau
approaches plain counting.  This bench measures top-list agreement
between tau settings against the exact top list of the same stream.
"""

import collections

import pytest

from benchmarks.conftest import base_scenario, save_result
from repro.analysis.tables import format_table
from repro.observatory.keys import make_dataset
from repro.observatory.tracker import TopKTracker
from repro.simulation.sie import SieChannel


@pytest.fixture(scope="module")
def stream():
    scenario = base_scenario(duration=240.0, client_qps=120.0)
    return list(SieChannel(scenario).run())


def _exact_top(stream, n):
    counts = collections.Counter(t.server_ip for t in stream)
    return [ip for ip, _ in counts.most_common(n)]


def _tracked_top(stream, tau, k=400, n=50):
    tracker = TopKTracker(make_dataset("srvip", k), tau=tau,
                          use_bloom_gate=False)
    for txn in stream:
        tracker.observe(txn)
    return [e.key for e in tracker.top(n)]


def test_ablation_ewma_tau(benchmark, stream):
    exact = set(_exact_top(stream, 50))
    taus = (30.0, 300.0, 3000.0, 1e9)
    agreements = {}
    for tau in taus:
        if tau == 300.0:
            top = benchmark.pedantic(_tracked_top, args=(stream, tau),
                                     rounds=2, iterations=1)
        else:
            top = _tracked_top(stream, tau)
        agreements[tau] = len(set(top) & exact) / len(exact)
    save_result("ablation_ewma", format_table(
        ["tau [s]", "top-50 agreement"],
        [("%g" % tau, "%.2f" % agreements[tau]) for tau in taus],
        title="Ablation: Space-Saving decay constant"))

    # The default (300 s) must identify the exact heavy hitters well,
    # and the near-infinite tau (plain counting) must do so too.
    assert agreements[300.0] > 0.8
    assert agreements[1e9] > 0.8
