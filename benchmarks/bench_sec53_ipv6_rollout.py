"""Section 5.3: the effect of deploying IPv6 on an IPv4-only FQDN.

Paper result: for 10 FQDNs that enabled IPv6 during the observation
window, empty AAAA responses dropped as expected, while total query
volume did not change significantly (their negTTLs matched their
regular TTLs).
"""

import pytest

from benchmarks.conftest import BenchRun, base_scenario, save_result
from repro.analysis.happyeyeballs import ipv6_rollout, render_ipv6_rollout
from repro.simulation.scenario import EnableIpv6, TtlChange

FQDN = "updates.softcdn.com"
ROLLOUT_AT = 1200.0
DURATION = 2400.0


@pytest.fixture(scope="module")
def rollout_run():
    scenario = base_scenario(
        duration=DURATION, client_qps=100.0, n_slds=600,
        popular_fqdns=800, dualstack_fraction=0.6,
        scripted_events=[
            # Align negTTL with the regular TTL first (the paper's
            # no-volume-change precondition), then publish AAAA.
            TtlChange(at=ROLLOUT_AT, name="softcdn.com", new_ttl=3600,
                      rtype="SOA"),
            EnableIpv6(at=ROLLOUT_AT, fqdn=FQDN),
        ],
    )
    return BenchRun(scenario, datasets=[("qname", 3000)],
                    keep_transactions=False)


def test_sec53_ipv6_rollout(benchmark, rollout_run):
    result = benchmark.pedantic(
        ipv6_rollout, args=(rollout_run.obs, FQDN, ROLLOUT_AT),
        rounds=3, iterations=1)
    save_result("sec53_ipv6_rollout", render_ipv6_rollout(result, FQDN))

    # Empty AAAA responses collapse after the rollout...
    assert result["before"]["empty_aaaa_share"] > 0.1
    assert result["after"]["empty_aaaa_share"] < \
        result["before"]["empty_aaaa_share"] / 2
    # ...while AAAA-with-data appears.
    assert result["after"]["aaaa_data_share"] > 0
