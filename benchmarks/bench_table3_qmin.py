"""Table 3 / Section 3.6: QNAME minimization detection.

Paper result: almost no qmin deployment -- a handful of candidate
resolvers (a university, an IT business), ~0.005 % of root traffic and
~0.0001 % of TLD traffic from qmin resolvers, under the strict 100 %
notion of minimization.
"""

from benchmarks.conftest import save_result
from repro.analysis.qmin import detect_qmin, render_table3


def test_table3_qmin_detection(benchmark, base_run):
    root_ips = base_run.root_server_ips()
    tld_ips = base_run.tld_server_ips()
    whitelisted = base_run.server_ips(
        ns for tld in base_run.dns.root.tlds.values()
        for ns in tld.nameservers if tld.registry_suffixes)
    detector = benchmark.pedantic(
        detect_qmin, args=(base_run.transactions, root_ips, tld_ips,
                           whitelisted),
        rounds=1, iterations=1)
    save_result("table3_qmin", render_table3(detector))

    truth = {r.ip for r in base_run.channel.resolvers if r.qmin}
    candidates = set(detector.cross_check(
        detector.possible_qmin_resolvers_root()))
    active = set(detector.root_max_labels)
    # Perfect recall on active qmin resolvers, no false convictions.
    assert truth & active <= candidates
    assert not (candidates & (active - truth))
    # qmin remains a small minority of root traffic.
    shares = detector.qmin_traffic_shares()
    assert shares["root"] < 0.3
