"""Table 2: the top-10 QTYPE profiles.

Paper result: A 64 % vs AAAA 22 % (~3:1); AAAA NoData 25 % vs A 0.6 %
(>40x); NS queries 86 % NXDOMAIN with outsized responses; PTR 6.4 %
with deep labels (qdots 6.8) and TTL 86400; TXT with tiny TTLs (5 s)
from protocol-over-DNS users.
"""

from benchmarks.conftest import save_result
from repro.analysis.qtypes import render_table2, table2


def test_table2_qtype_profiles(benchmark, base_run):
    rows, total = benchmark.pedantic(
        table2, args=(base_run.obs,), rounds=3, iterations=1)
    save_result("table2_qtypes", render_table2(rows))

    by_type = {r.qtype: r for r in rows}
    assert rows[0].qtype == "A"
    assert by_type["A"].global_share > 2 * by_type["AAAA"].global_share
    assert by_type["AAAA"].nodata > 3 * max(by_type["A"].nodata, 1e-3)
    if "NS" in by_type:
        assert by_type["NS"].nxd > 0.5
    if "PTR" in by_type:
        assert by_type["PTR"].qdots > 1.5 * by_type["A"].qdots
        assert by_type["PTR"].ttl == 86400
    if "TXT" in by_type:
        assert by_type["TXT"].ttl <= 60
