"""Figure 4: data representativeness vs vantage-point sample size.

Paper result: the number of nameservers seen in 1 h converges to
500-600 K as the VP fraction grows (bounded missing set); a 5 % VP
sample already sees 95 % of the top-10K nameserver list; observed
TLDs converge to ~1,150 actively used.
"""

import pytest

from benchmarks.conftest import BenchRun, base_scenario, save_result
from repro.analysis.representativeness import (
    convergence_ratio,
    render_figure4,
    vp_sample_curves,
)


@pytest.fixture(scope="module")
def available_data_run():
    """The paper's second curve: "Available data" previews the effect
    of ingesting all SIE channels -- more vantage points carrying
    proportionally more client traffic."""
    return BenchRun(base_scenario(n_resolvers=96, n_contributors=16,
                                  client_qps=225.0),
                    datasets=["qtype"])


def test_fig4_vp_sampling(benchmark, base_run, available_data_run):
    curves = benchmark.pedantic(
        vp_sample_curves, args=(base_run.transactions,),
        kwargs={"repetitions": 10, "top_k": 500},
        rounds=1, iterations=1)
    available = vp_sample_curves(available_data_run.transactions,
                                 repetitions=5, top_k=500)
    out = "%s\n\n\"Available data\" (more VPs, paper's red curve):\n%s" % (
        render_figure4(curves), render_figure4(available))
    save_result("fig4_representativeness", out)

    # More vantage points see more nameservers at every sample size
    # (the red curve sits above the blue one in Fig 4a)...
    assert available[-1]["nameservers"] > curves[-1]["nameservers"]
    # ...but barely more TLDs (Fig 4c: "does not bring us much more
    # coverage").
    assert available[-1]["tlds"] <= curves[-1]["tlds"] * 1.15

    counts = [c["nameservers"] for c in curves]
    assert counts[0] < counts[-1]              # more VPs see more
    assert convergence_ratio(curves) > 0.6      # but it saturates
    # Small samples already cover most of the top list (Fig 4b:
    # "even a 5% sample is enough to see 95% of the list").
    assert curves[0]["top_coverage"] > 0.6
    assert curves[-1]["top_coverage"] == 1.0
    # TLD curve converges well below the nameserver curve (Fig 4c).
    assert curves[-1]["tlds"] <= base_run.scenario.n_tlds
    assert curves[1]["tlds"] / max(curves[-1]["tlds"], 1) > \
        curves[1]["nameservers"] / max(curves[-1]["nameservers"], 1)
