"""Section 3.1: dataset capture ratios.

Paper result: the Top-100K nameserver list captures 94.9 % of all
transactions; the Top-100K FQDN list only 23.2 % (18.6 % for the top
10K); the Top-100K eSLD list 68.5 % -- object cardinality determines
how much of the stream a bounded top list can hold.
"""

from benchmarks.conftest import save_result
from repro.analysis.tables import format_percent, format_table


def test_sec31_capture_ratios(benchmark, base_run):
    ratios = benchmark.pedantic(
        base_run.obs.capture_ratios, rounds=5, iterations=1)
    rows = [(name, format_percent(ratio))
            for name, ratio in sorted(ratios.items())]
    save_result("sec31_capture", format_table(
        ["dataset", "capture"], rows,
        title="Section 3.1: capture ratios"))

    # Fewer distinct nameservers than FQDNs: srvip captures most,
    # qname least, esld in between (paper: 94.9 / 23.2 / 68.5 %).
    assert ratios["srvip"] > ratios["esld"] > ratios["qname"]
    assert ratios["srvip"] > 0.7
