"""Detector overhead: abuse detection must not tax ingest.

The detectors ride the same window/flush chain as the trackers, and
their per-transaction accumulators are deliberately cheap (one eSLD
split, a character histogram, one HLL offer, one set insert).  This
bench holds them to that: full-pipeline all-datasets ingest with
``detectors=True`` must stay within 5% of the detector-free path,
and the detector-free path (the default, i.e. the seed configuration)
is a fortiori untouched.

Two entry points:

* ``pytest benchmarks/bench_detect.py --benchmark-only`` records both
  rates under ``benchmarks/results/``;
* ``python benchmarks/bench_detect.py --check`` runs a quick
  interleaved A/B and exits nonzero when the overhead bound is
  violated -- the CI guard.
"""

import sys
import time

try:
    import pytest
except ImportError:  # pragma: no cover - script mode without pytest
    pytest = None

from repro.observatory.pipeline import Observatory
from repro.simulation.scenario import Scenario, TunnelAttack, WaterTorture
from repro.simulation.sie import SieChannel

#: maximum tolerated throughput cost of enabling the detectors
OVERHEAD_BOUND = 0.05

#: the full paper dataset list, same as bench_pipeline_throughput
ALL_DATASETS = [("srvip", 2000), ("qname", 4000), ("esld", 2000),
                "qtype", "rcode", ("aafqdn", 2000)]


def _build_batch(duration=120.0, client_qps=120.0, seed=2019):
    """A workload that actually exercises the detectors: scripted
    tunnel + water-torture traffic rides on the benign base load, so
    the accumulators see hostile volumes rather than idling."""
    scenario = Scenario.tiny(
        duration=duration, client_qps=client_qps, seed=seed,
        scripted_events=[TunnelAttack(at=30.0, qps=20.0),
                         WaterTorture(at=30.0, qps=20.0)])
    return list(SieChannel(scenario).run())


def _ingest(batch, detectors):
    obs = Observatory(datasets=ALL_DATASETS, detectors=detectors,
                      keep_dumps=False)
    obs.consume(batch)
    obs.finish()
    return obs


def _best_times(batch, rounds=5):
    """Interleaved A/B: best-of-*rounds* wall time per configuration.

    Interleaving keeps thermal / frequency drift from biasing one arm;
    the best-of minimum is the standard noise-robust point estimate.
    """
    best = {False: float("inf"), True: float("inf")}
    for _ in range(rounds):
        for detectors in (False, True):
            started = time.perf_counter()
            _ingest(batch, detectors)
            best[detectors] = min(best[detectors],
                                  time.perf_counter() - started)
    return best[False], best[True]


def check_overhead(rounds=5, bound=OVERHEAD_BOUND):
    """Measure the enabled-vs-disabled overhead; returns (ok, report)."""
    batch = _build_batch()
    disabled, enabled = _best_times(batch, rounds=rounds)
    overhead = enabled / disabled - 1.0
    rate_off = len(batch) / disabled
    rate_on = len(batch) / enabled
    report = (
        "detector overhead: disabled %d txn/s, enabled %d txn/s, "
        "overhead %+.1f%% (bound %.0f%%, %d transactions)"
        % (rate_off, rate_on, overhead * 100, bound * 100, len(batch)))
    return overhead <= bound, report


if pytest is not None:

    @pytest.fixture(scope="module")
    def transaction_batch():
        return _build_batch()

    @pytest.mark.parametrize("detectors", [False, True],
                             ids=["disabled", "enabled"])
    def test_ingest_rate(benchmark, transaction_batch, detectors):
        from benchmarks.conftest import save_result

        obs = benchmark.pedantic(
            lambda: _ingest(transaction_batch, detectors),
            rounds=3, iterations=1)
        rate = len(transaction_batch) / benchmark.stats["mean"]
        save_result(
            "detect_%s" % ("enabled" if detectors else "disabled"),
            "detectors %s: %d txn/s (%d transactions)"
            % ("enabled" if detectors else "disabled", rate,
               len(transaction_batch)))
        assert obs.total_seen == len(transaction_batch)

    def test_overhead_within_bound(transaction_batch):
        disabled, enabled = _best_times(transaction_batch, rounds=5)
        overhead = enabled / disabled - 1.0
        # Double the CI bound for the in-suite assertion: shared
        # runners are noisy, and the hard gate is the --check entry.
        assert overhead <= 2 * OVERHEAD_BOUND, \
            "detector overhead %.1f%% exceeds bound" % (overhead * 100)


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    if "--check" not in argv:
        print("usage: python benchmarks/bench_detect.py --check",
              file=sys.stderr)
        return 2
    ok, report = check_overhead()
    print(report)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
