"""Ablation: Space-Saving vs Count-Min-Sketch top-k.

Design justification for §2.2's choice of Space-Saving: both sketches
identify the heavy hitters, but SS keeps one stable slot per tracked
key -- the container the Observatory attaches its per-object feature
state to -- while CMS needs width*depth counters *plus* a candidate
heap, and its members have no stable identity across evictions.  This
bench compares top-50 accuracy and counter memory on the same stream.
"""

import collections

import pytest

from benchmarks.conftest import base_scenario, save_result
from repro.analysis.tables import format_table
from repro.simulation.sie import SieChannel
from repro.sketches.countmin import CmsTopK
from repro.sketches.spacesaving import SpaceSaving


@pytest.fixture(scope="module")
def keys():
    scenario = base_scenario(duration=240.0, client_qps=120.0)
    return [(t.ts, t.server_ip) for t in SieChannel(scenario).run()]


def _exact_top(keys, n=50):
    counts = collections.Counter(k for _, k in keys)
    return [k for k, _ in counts.most_common(n)]


def _ss_top(keys, k=400, n=50):
    ss = SpaceSaving(capacity=k, tau=1e12)
    for ts, key in keys:
        ss.offer(key, now=ts)
    return [e.key for e in ss.top(n)], k  # memory: k entries


def _cms_top(keys, k=400, width=2048, depth=4, n=50):
    topk = CmsTopK(capacity=k, width=width, depth=depth)
    for _, key in keys:
        topk.offer(key)
    return [key for key, _ in topk.top(n)], width * depth + k


def test_ablation_topk_sketch(benchmark, keys):
    exact = set(_exact_top(keys))
    ss_top, ss_mem = benchmark.pedantic(_ss_top, args=(keys,),
                                        rounds=2, iterations=1)
    cms_top, cms_mem = _cms_top(keys)
    ss_agreement = len(set(ss_top) & exact) / len(exact)
    cms_agreement = len(set(cms_top) & exact) / len(exact)
    save_result("ablation_topk_sketch", format_table(
        ["sketch", "top-50 agreement", "counters"],
        [("Space-Saving (paper)", "%.2f" % ss_agreement, ss_mem),
         ("CMS + heap", "%.2f" % cms_agreement, cms_mem)],
        title="Ablation: top-k sketch choice"))

    # Both must find the heavy hitters; SS does it with far less state
    # and gives every tracked key a stable feature-state slot.
    assert ss_agreement > 0.9
    assert cms_agreement > 0.8
    assert ss_mem < cms_mem
