"""Figure 9: negative-caching TTLs vs empty AAAA responses.

Paper result: in the top-200 FQDNs, 5 have >70 % of all responses
being empty AAAA; the worst are two OS NTP hosts (negTTL 15 s vs A TTL
10-15 min -> 89 % and 94 % empty); an ad network (75 %) and a CDN
update host (88 %) follow; one blog host has 74 % empty despite a
*high* negTTL because some resolvers ignore it.
"""

from benchmarks.conftest import save_result
from repro.analysis.happyeyeballs import (
    figure9,
    high_empty_fqdns,
    quotient_correlation,
    render_figure9,
)


def test_fig9_negative_caching(benchmark, base_run):
    points = benchmark.pedantic(
        figure9, args=(base_run.obs, base_run.negttl_lookup),
        kwargs={"top_n": 300, "horizon": base_run.scenario.duration},
        rounds=3, iterations=1)
    save_result("fig9_happy_eyeballs", render_figure9(points))

    by_fqdn = {p.fqdn: p for p in points}
    # The NTP hosts show the extreme empty-AAAA shares.
    ntp = by_fqdn.get("time-a.ntpsync.com") or \
        by_fqdn.get("time-b.ntpsync.com")
    assert ntp is not None
    assert ntp.empty_aaaa_share > 0.5
    assert ntp.quotient > 5
    # Several top FQDNs cross the paper's 70% line at least at 50%.
    assert len(high_empty_fqdns(points, threshold=0.5)) >= 2
    # Quotient correlates with empty share among IPv4-only FQDNs.
    corr = quotient_correlation(points)
    if corr["high_quotient_count"] and corr["low_quotient_count"]:
        assert corr["high_quotient_mean_share"] > \
            corr["low_quotient_mean_share"]
