"""Figure 8: TTL changes vs query-volume changes across top SLDs.

Paper result: for the top-100 SLDs by traffic change between two
months, TTL decreases mostly produce traffic increases (near-inverse
relation); among TTL-*increase* cases, traffic rose anyway in twice as
many SLDs as it fell, and 28 of those 34 were query-only growth
(NXDOMAIN/junk, not real responses).
"""

import pytest

from benchmarks.conftest import BenchRun, base_scenario, save_result
from repro.analysis.ttltraffic import (
    figure8,
    figure8_summary,
    render_figure8,
)
from repro.dnswire.constants import QTYPE
from repro.simulation.buildout import build_global_dns
from repro.simulation.scenario import JunkSurge, TtlChange

DURATION = 3000.0
SPLIT_AT = 1200.0


def _scenario_with_epoch_changes():
    """Deterministically pick SLDs and script TTL flips at the epoch
    boundary: decreases for high-TTL zones, increases for low-TTL."""
    params = dict(duration=DURATION, client_qps=100.0, n_slds=800,
                  popular_fqdns=1200)
    probe = build_global_dns(base_scenario(**params))
    events = []
    decreases = increases = 0
    for zone in probe.slds[2:60]:
        record = zone.get_record("www." + zone.name, QTYPE.A) or \
            zone.get_record(zone.name, QTYPE.A)
        if record is None:
            continue
        if record.ttl >= 300 and decreases < 12:
            new_ttl, decreases = 10, decreases + 1
        elif record.ttl < 300 and increases < 12:
            new_ttl, increases = 86400, increases + 1
        else:
            continue
        # Operators change the whole zone: A and AAAA alike.
        events.append(TtlChange(at=SPLIT_AT, name=zone.name,
                                new_ttl=new_ttl, rtype="A"))
        events.append(TtlChange(at=SPLIT_AT, name=zone.name,
                                new_ttl=new_ttl, rtype="AAAA"))
        # The paper's inconsistent cases: some up-TTL SLDs *gain*
        # queries anyway because PRSD-style junk hits them in the
        # second epoch -- query-only growth, no extra responses.
        if new_ttl == 86400 and increases <= 6:
            events.append(JunkSurge(at=SPLIT_AT, sld=zone.name, qps=1.5))
    return base_scenario(scripted_events=events, **params)


@pytest.fixture(scope="module")
def epoch_run():
    return BenchRun(_scenario_with_epoch_changes(),
                    datasets=[("esld", 2000)], keep_transactions=False)


def test_fig8_ttl_vs_traffic(benchmark, epoch_run):
    changes = benchmark.pedantic(
        figure8, args=(epoch_run.obs, SPLIT_AT), kwargs={"top_n": 100},
        rounds=3, iterations=1)
    summary = figure8_summary(changes)
    save_result("fig8_ttl_vs_traffic", render_figure8(changes, summary))

    assert summary["ttl_down"] >= 5
    # Inverse relation: most TTL decreases increase traffic.
    assert summary["ttl_down_traffic_up"] > summary["ttl_down"] / 2
    # The scripted increases are detected too.
    assert summary["ttl_up"] >= 3
    # And the inconsistent up-TTL/up-traffic cases are query-only
    # growth (paper: 28 of 34 such cases were NXDOMAIN-driven).
    if summary["ttl_up_traffic_up"]:
        assert summary["ttl_up_traffic_up_query_only"] >= \
            summary["ttl_up_traffic_up"] / 2
